(* Unit and property tests for the util library. *)

module Prng = Numa_util.Prng
module Bitvec = Numa_util.Bitvec
module Stats = Numa_util.Stats
module Histogram = Numa_util.Histogram
module Text_table = Numa_util.Text_table

(* --- prng --------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:123L and b = Prng.create ~seed:123L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1L and b = Prng.create ~seed:2L in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.next_int64 a <> Prng.next_int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_bounds () =
  let t = Prng.create ~seed:7L in
  for _ = 1 to 1000 do
    let v = Prng.int t 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in t ~lo:5 ~hi:9 in
    Alcotest.(check bool) "in inclusive range" true (v >= 5 && v <= 9)
  done;
  for _ = 1 to 100 do
    let f = Prng.float t 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0. && f < 2.5)
  done

let test_prng_split_independent () =
  let parent = Prng.create ~seed:99L in
  let child = Prng.split parent in
  (* The two streams should not be identical. *)
  let same = ref 0 in
  for _ = 1 to 20 do
    if Prng.next_int64 parent = Prng.next_int64 child then incr same
  done;
  Alcotest.(check bool) "split stream differs" true (!same < 20)

let test_prng_copy () =
  let a = Prng.create ~seed:5L in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b)

let test_prng_shuffle_permutation () =
  let t = Prng.create ~seed:11L in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle_in_place t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_prng_invalid () =
  let t = Prng.create ~seed:1L in
  Alcotest.check_raises "int 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0));
  Alcotest.check_raises "empty choose" (Invalid_argument "Prng.choose: empty array")
    (fun () -> ignore (Prng.choose t [||]))

(* --- bitvec --------------------------------------------------------------- *)

let test_bitvec_basic () =
  let v = Bitvec.create 70 in
  Alcotest.(check int) "length" 70 (Bitvec.length v);
  Alcotest.(check bool) "initially clear" false (Bitvec.get v 33);
  Bitvec.set v 33;
  Alcotest.(check bool) "set" true (Bitvec.get v 33);
  Bitvec.clear v 33;
  Alcotest.(check bool) "cleared" false (Bitvec.get v 33);
  Bitvec.assign v 69 true;
  Alcotest.(check int) "popcount" 1 (Bitvec.popcount v)

let test_bitvec_fill_popcount () =
  let v = Bitvec.create 13 in
  Bitvec.fill v true;
  Alcotest.(check int) "all set (partial last byte)" 13 (Bitvec.popcount v);
  Bitvec.fill v false;
  Alcotest.(check int) "all clear" 0 (Bitvec.popcount v)

let test_bitvec_union_equal () =
  let a = Bitvec.create 20 and b = Bitvec.create 20 in
  Bitvec.set a 1;
  Bitvec.set b 2;
  Bitvec.union_into ~dst:a b;
  Alcotest.(check bool) "union has both" true (Bitvec.get a 1 && Bitvec.get a 2);
  let c = Bitvec.create 20 in
  Bitvec.set c 1;
  Bitvec.set c 2;
  Alcotest.(check bool) "equal" true (Bitvec.equal a c)

let test_bitvec_bounds () =
  let v = Bitvec.create 8 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitvec: index out of range")
    (fun () -> ignore (Bitvec.get v 8))

let prop_bitvec_model =
  QCheck.Test.make ~name:"bitvec agrees with bool array" ~count:200
    QCheck.(pair (int_bound 100) (list (pair (int_bound 100) bool)))
    (fun (size, ops) ->
      let size = size + 1 in
      let v = Bitvec.create size and model = Array.make size false in
      List.iter
        (fun (i, b) ->
          let i = i mod size in
          Bitvec.assign v i b;
          model.(i) <- b)
        ops;
      let ok = ref true in
      Array.iteri (fun i b -> if Bitvec.get v i <> b then ok := false) model;
      !ok && Bitvec.popcount v = Array.fold_left (fun a b -> if b then a + 1 else a) 0 model)

(* --- stats ----------------------------------------------------------------- *)

let test_stats_moments () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "total" 40.0 (Stats.total s);
  Alcotest.(check (float 1e-9)) "variance (unbiased)" (32. /. 7.) (Stats.variance s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.max s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 0.)) "mean of empty" 0. (Stats.mean s);
  Alcotest.(check (float 0.)) "variance of empty" 0. (Stats.variance s)

let test_stats_helpers () =
  Alcotest.(check (float 1e-9)) "ratio" 0.5 (Stats.ratio ~num:1. ~den:2.);
  Alcotest.(check (float 1e-9)) "ratio by zero" 0. (Stats.ratio ~num:1. ~den:0.);
  Alcotest.(check (float 1e-9)) "percent" 50. (Stats.percent ~num:1. ~den:2.)

(* --- histogram ---------------------------------------------------------------- *)

let test_histogram () =
  let h = Histogram.create () in
  Histogram.add h 3;
  Histogram.add h 3;
  Histogram.add_many h 7 5;
  Alcotest.(check int) "count 3" 2 (Histogram.count h 3);
  Alcotest.(check int) "count 7" 5 (Histogram.count h 7);
  Alcotest.(check int) "count missing" 0 (Histogram.count h 99);
  Alcotest.(check int) "total" 7 (Histogram.total h);
  Alcotest.(check (list int)) "keys sorted" [ 3; 7 ] (Histogram.keys h);
  Alcotest.(check (list (pair int int))) "sorted list" [ (3, 2); (7, 5) ]
    (Histogram.to_sorted_list h)

let test_histogram_mean_percentile () =
  let h = Histogram.create () in
  (* Totality on the empty histogram: every percentile (including the
     boundary ranks) and the mean are defined values, never exceptions. *)
  List.iter
    (fun p -> Alcotest.(check int) "empty percentile" 0 (Histogram.percentile h p))
    [ 0.; 50.; 100. ];
  Alcotest.(check int) "empty max key" 0 (Histogram.max_key h);
  Alcotest.(check (float 1e-9)) "empty mean" 0. (Histogram.mean h);
  Alcotest.(check int) "empty total" 0 (Histogram.total h);
  Histogram.add_many h 1 50;
  Histogram.add_many h 2 30;
  Histogram.add_many h 10 19;
  Histogram.add h 100;
  (* 100 samples: 50 ones, 30 twos, 19 tens, 1 hundred. *)
  Alcotest.(check int) "p0 is smallest key" 1 (Histogram.percentile h 0.);
  Alcotest.(check int) "p50" 1 (Histogram.percentile h 50.);
  Alcotest.(check int) "p80" 2 (Histogram.percentile h 80.);
  Alcotest.(check int) "p99" 10 (Histogram.percentile h 99.);
  Alcotest.(check int) "p100 is largest key" 100 (Histogram.percentile h 100.);
  Alcotest.(check int) "max key" 100 (Histogram.max_key h);
  let expected_mean =
    ((1. *. 50.) +. (2. *. 30.) +. (10. *. 19.) +. 100.) /. 100.
  in
  Alcotest.(check (float 1e-9)) "mean" expected_mean (Histogram.mean h)

let test_histogram_percentile_invalid () =
  let h = Histogram.create () in
  Histogram.add h 1;
  Alcotest.check_raises "p > 100"
    (Invalid_argument "Histogram.percentile: p must be in [0,100]") (fun () ->
      ignore (Histogram.percentile h 100.1));
  Alcotest.check_raises "p < 0"
    (Invalid_argument "Histogram.percentile: p must be in [0,100]") (fun () ->
      ignore (Histogram.percentile h (-1.)))

let test_histogram_percentile_single_key () =
  let h = Histogram.create () in
  Histogram.add_many h 4 1000;
  List.iter
    (fun p -> Alcotest.(check int) "all percentiles hit the one key" 4 (Histogram.percentile h p))
    [ 0.; 1.; 50.; 99.; 100. ];
  Alcotest.(check (float 1e-9)) "mean of constant" 4. (Histogram.mean h)

(* --- text table ----------------------------------------------------------------- *)

let test_text_table_render () =
  let t =
    Text_table.create ~columns:[ ("name", Text_table.Left); ("value", Text_table.Right) ]
  in
  Text_table.add_row t [ "x"; "10" ];
  Text_table.add_rule t;
  Text_table.add_row t [ "longer"; "3" ];
  let s = Text_table.render t in
  (* header, header rule, row, explicit rule, row *)
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "5 lines" 5 (List.length lines);
  (match lines with
  | header :: _ -> Alcotest.(check bool) "header first" true (String.length header > 0)
  | [] -> Alcotest.fail "empty render");
  Alcotest.(check bool) "contains both rows" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.exists (fun l -> l = "x          10"
                                                            || String.length l > 0))

let test_text_table_arity () =
  let t = Text_table.create ~columns:[ ("a", Text_table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Text_table.add_row: arity mismatch")
    (fun () -> Text_table.add_row t [ "x"; "y" ])

let test_text_table_cells () =
  Alcotest.(check string) "f1" "1.5" (Text_table.cell_f1 1.54);
  Alcotest.(check string) "f2" "0.94" (Text_table.cell_f2 0.938);
  Alcotest.(check string) "pct" "24.9%" (Text_table.cell_pct 24.91);
  Alcotest.(check string) "int" "42" (Text_table.cell_int 42)

let qcheck t = QCheck_alcotest.to_alcotest t

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_deterministic;
    Alcotest.test_case "prng seed sensitivity" `Quick test_prng_seed_sensitivity;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "prng copy" `Quick test_prng_copy;
    Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "prng invalid args" `Quick test_prng_invalid;
    Alcotest.test_case "bitvec basic" `Quick test_bitvec_basic;
    Alcotest.test_case "bitvec fill/popcount" `Quick test_bitvec_fill_popcount;
    Alcotest.test_case "bitvec union/equal" `Quick test_bitvec_union_equal;
    Alcotest.test_case "bitvec bounds" `Quick test_bitvec_bounds;
    qcheck prop_bitvec_model;
    Alcotest.test_case "stats moments" `Quick test_stats_moments;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    Alcotest.test_case "stats helpers" `Quick test_stats_helpers;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram mean/percentile" `Quick test_histogram_mean_percentile;
    Alcotest.test_case "histogram percentile bounds" `Quick test_histogram_percentile_invalid;
    Alcotest.test_case "histogram percentile single key" `Quick
      test_histogram_percentile_single_key;
    Alcotest.test_case "text table render" `Quick test_text_table_render;
    Alcotest.test_case "text table arity" `Quick test_text_table_arity;
    Alcotest.test_case "text table cells" `Quick test_text_table_cells;
  ]
