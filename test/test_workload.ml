(* Unit tests for the application toolkit: arrays, strides, work piles. *)

open Numa_machine
module System = Numa_system.System
module Api = Numa_sim.Api
module W = Numa_apps.Workload
module Region_attr = Numa_vm.Region_attr

let small_config () = Config.ace ~n_cpus:4 ~local_pages_per_cpu:64 ~global_pages:256 ()

let mk () = System.create ~config:(small_config ()) ()

let alloc sys ~words =
  W.alloc_arr sys ~name:"arr" ~sharing:Region_attr.Declared_write_shared ~words ()

let test_arr_geometry () =
  let sys = mk () in
  let a = alloc sys ~words:1000 in
  (* 512 words per 2 KB page -> 2 pages. *)
  Alcotest.(check int) "2 pages" 2 (W.n_pages a);
  Alcotest.(check int) "word 0 on base page" a.W.region.System.base_vpage (W.vpage_of a 0);
  Alcotest.(check int) "word 511 on base page" a.W.region.System.base_vpage
    (W.vpage_of a 511);
  Alcotest.(check int) "word 512 on next page"
    (a.W.region.System.base_vpage + 1)
    (W.vpage_of a 512);
  Alcotest.check_raises "oob" (Invalid_argument "Workload.vpage_of: index out of range")
    (fun () -> ignore (W.vpage_of a 1000))

(* Count batched operations via the trace hook. *)
let count_ops sys f =
  let ops = ref 0 and refs = ref 0 in
  System.set_access_hook sys
    (Some
       (fun e ->
         incr ops;
         refs := !refs + e.System.count));
  ignore (System.spawn sys ~name:"t" (fun ~stack_vpage:_ -> f ()));
  ignore (System.run sys);
  System.set_access_hook sys None;
  (!ops, !refs)

let test_range_batches_per_page () =
  let sys = mk () in
  let a = alloc sys ~words:2048 in
  let ops, refs = count_ops sys (fun () -> W.read_range a ~lo:100 ~n:1000) in
  (* Words 100..1099 touch pages 0,1,2 -> 3 batched ops, 1000 refs. *)
  Alcotest.(check int) "3 ops" 3 ops;
  Alcotest.(check int) "1000 refs" 1000 refs

let test_stride_batches () =
  let sys = mk () in
  let a = alloc sys ~words:4096 in
  (* Stride 512 = one element per page: 8 ops of 1 ref. *)
  let ops, refs = count_ops sys (fun () -> W.read_stride a ~lo:0 ~n:8 ~stride:512) in
  Alcotest.(check int) "8 ops" 8 ops;
  Alcotest.(check int) "8 refs" 8 refs;
  (* Stride 128 = four elements per page. *)
  let sys2 = mk () in
  let b = alloc sys2 ~words:4096 in
  let ops2, refs2 = count_ops sys2 (fun () -> W.read_stride b ~lo:0 ~n:16 ~stride:128) in
  Alcotest.(check int) "4 ops (4 per page)" 4 ops2;
  Alcotest.(check int) "16 refs" 16 refs2

let test_stride_bounds () =
  let sys = mk () in
  let a = alloc sys ~words:512 in
  ignore
    (System.spawn sys ~name:"t" (fun ~stack_vpage:_ ->
         W.read_stride a ~lo:0 ~n:1 ~stride:9999));
  ignore (System.run sys);
  Alcotest.(check bool) "single element always fine" true true;
  Alcotest.check_raises "overrun rejected"
    (Invalid_argument "Workload: stride range out of bounds") (fun () ->
      ignore (W.read_stride a ~lo:0 ~n:3 ~stride:256))

let test_linkage_mix () =
  let sys = mk () in
  let reads = ref 0 and writes = ref 0 in
  System.set_access_hook sys
    (Some
       (fun e ->
         match e.System.kind with
         | Access.Load -> reads := !reads + e.System.count
         | Access.Store -> writes := !writes + e.System.count));
  ignore
    (System.spawn sys ~name:"t" (fun ~stack_vpage ->
         W.linkage ~stack_vpage ~refs:101));
  ignore (System.run sys);
  Alcotest.(check int) "51 fetches" 51 !reads;
  Alcotest.(check int) "50 stores" 50 !writes

let test_workpile_covers_exactly () =
  let sys = mk () in
  let pile = W.make_workpile sys ~name:"pile" ~total:103 ~chunk:10 in
  let covered = Array.make 103 0 in
  for i = 0 to 3 do
    ignore
      (System.spawn sys ~cpu:i ~name:(Printf.sprintf "t%d" i) (fun ~stack_vpage:_ ->
           let rec go () =
             match W.workpile_take pile with
             | None -> ()
             | Some (lo, hi) ->
                 Alcotest.(check bool) "chunk bounded" true (hi - lo + 1 <= 10);
                 for k = lo to hi do
                   covered.(k) <- covered.(k) + 1
                 done;
                 Numa_sim.Api.compute 10_000.;
                 go ()
           in
           go ()))
  done;
  ignore (System.run sys);
  Array.iteri
    (fun i n -> if n <> 1 then Alcotest.failf "unit %d covered %d times" i n)
    covered

let test_static_share_partitions () =
  let total = 100 and nthreads = 7 in
  let seen = Array.make total 0 in
  for tid = 0 to nthreads - 1 do
    let lo, hi = W.static_share ~total ~nthreads ~tid in
    for i = lo to hi - 1 do
      seen.(i) <- seen.(i) + 1
    done
  done;
  Array.iteri (fun i n -> if n <> 1 then Alcotest.failf "index %d covered %d times" i n) seen;
  (* Shares are balanced within one unit. *)
  let sizes =
    List.init nthreads (fun tid ->
        let lo, hi = W.static_share ~total ~nthreads ~tid in
        hi - lo)
  in
  let mn = List.fold_left min max_int sizes and mx = List.fold_left max 0 sizes in
  Alcotest.(check bool) "balanced" true (mx - mn <= 1)

let test_primes_util () =
  Alcotest.(check int) "isqrt 0" 0 (Numa_apps.Primes_util.isqrt 0);
  Alcotest.(check int) "isqrt 15" 3 (Numa_apps.Primes_util.isqrt 15);
  Alcotest.(check int) "isqrt 16" 4 (Numa_apps.Primes_util.isqrt 16);
  Alcotest.(check int) "isqrt 1e8" 10_000 (Numa_apps.Primes_util.isqrt 100_000_000);
  let p100 = Numa_apps.Primes_util.primes_upto 100 in
  Alcotest.(check int) "pi(100)" 25 (Array.length p100);
  Alcotest.(check int) "first prime" 2 p100.(0);
  Alcotest.(check int) "last under 100" 97 p100.(24);
  Alcotest.(check int) "pi(1)" 0 (Array.length (Numa_apps.Primes_util.primes_upto 1))

let test_odd_multiples_count () =
  let module P = Numa_apps.Primes_util in
  (* Bits 0..n stand for odd numbers 3,5,7,...; p = 3 marks 9,15,21,... *)
  let count = P.count_odd_multiples_in_bit_range ~p:3 ~lo_bit:0 ~hi_bit:48 ~limit:99 in
  (* odd multiples of 3 from 9 to 99: 9,15,...,99 -> 16. *)
  Alcotest.(check int) "3 marks up to 99" 16 count;
  (* Consistency: summing page-sized sub-ranges equals the full range. *)
  let full = P.count_odd_multiples_in_bit_range ~p:7 ~lo_bit:0 ~hi_bit:499 ~limit:1001 in
  let parts =
    List.init 5 (fun i ->
        P.count_odd_multiples_in_bit_range ~p:7 ~lo_bit:(i * 100)
          ~hi_bit:((i * 100) + 99) ~limit:1001)
  in
  Alcotest.(check int) "partition sums" full (List.fold_left ( + ) 0 parts)

let suite =
  [
    Alcotest.test_case "array geometry" `Quick test_arr_geometry;
    Alcotest.test_case "range batches per page" `Quick test_range_batches_per_page;
    Alcotest.test_case "stride batches" `Quick test_stride_batches;
    Alcotest.test_case "stride bounds" `Quick test_stride_bounds;
    Alcotest.test_case "linkage read/write mix" `Quick test_linkage_mix;
    Alcotest.test_case "workpile covers exactly once" `Quick test_workpile_covers_exactly;
    Alcotest.test_case "static share partitions" `Quick test_static_share_partitions;
    Alcotest.test_case "primes utilities" `Quick test_primes_util;
    Alcotest.test_case "odd-multiple counting" `Quick test_odd_multiples_count;
  ]
