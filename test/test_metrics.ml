(* Tests for the evaluation model and the experiment machinery, at small
   scale. *)

module Model = Numa_metrics.Model
module Runner = Numa_metrics.Runner
module Table3 = Numa_metrics.Table3
module Table4 = Numa_metrics.Table4
module Ablations = Numa_metrics.Ablations
module Paper_values = Numa_metrics.Paper_values
module Report = Numa_system.Report

let small_spec ?(scale = 0.05) () =
  { Runner.default_spec with Runner.scale; n_cpus = 4; nthreads = 4 }

(* --- model equations -------------------------------------------------------- *)

let test_equations_on_paper_rows () =
  (* Applying equations 1/4/5 to the paper's published times must recover
     the paper's published alpha/beta/gamma (to rounding). This pins our
     implementation of the model to the paper itself. *)
  let gl_of app = if app = "gfetch" || app = "imatmult" then 2.3 else 2.0 in
  List.iter
    (fun (r : Paper_values.table3_row) ->
      let times =
        {
          Model.t_global = r.Paper_values.t_global;
          t_numa = r.Paper_values.t_numa;
          t_local = r.Paper_values.t_local;
        }
      in
      (match r.Paper_values.alpha with
      | Some expected when r.Paper_values.app <> "primes1" ->
          Alcotest.(check (float 0.03))
            (r.Paper_values.app ^ " alpha")
            expected (Model.alpha times)
      | Some _ | None -> ());
      Alcotest.(check (float 0.03))
        (r.Paper_values.app ^ " gamma")
        r.Paper_values.gamma (Model.gamma times);
      (* IMatMult is excluded: the paper's published beta (0.26) does not
         satisfy equation 5 against its own published times with either
         G/L value (2.3 gives 0.16, 2.0 gives 0.20) — presumably a typo or
         a different L in their arithmetic; every other row solves
         exactly. *)
      if r.Paper_values.app <> "parmult" && r.Paper_values.app <> "imatmult" then
        Alcotest.(check (float 0.04))
          (r.Paper_values.app ^ " beta")
          r.Paper_values.beta
          (Model.beta times ~gl:(gl_of r.Paper_values.app)))
    Paper_values.table3

let test_equation2_forward () =
  (* gamma = 1 + beta (1 - alpha)(G/L - 1). *)
  let t = Model.predicted_t_numa ~t_local:100. ~alpha:0.5 ~beta:0.4 ~gl:2.0 in
  Alcotest.(check (float 1e-9)) "forward model" 120. t;
  let tg = Model.predicted_t_numa ~t_local:100. ~alpha:0. ~beta:1.0 ~gl:2.3 in
  Alcotest.(check (float 1e-9)) "all-global, all-memory" 230. tg

let test_valid_times () =
  Alcotest.(check bool) "ordered times valid" true
    (Model.valid_times { Model.t_global = 3.; t_numa = 2.; t_local = 1. });
  Alcotest.(check bool) "numa above global invalid" false
    (Model.valid_times { Model.t_global = 2.; t_numa = 3.; t_local = 1. });
  Alcotest.(check bool) "small noise tolerated" true
    (Model.valid_times { Model.t_global = 2.; t_numa = 2.004; t_local = 1. })

(* --- runner ------------------------------------------------------------------- *)

let test_app_gl_selection () =
  let config = Numa_machine.Config.ace () in
  let gl name =
    Runner.app_gl (Option.get (Numa_apps.Registry.find name)) config
  in
  Alcotest.(check (float 0.05)) "gfetch uses fetch ratio" 2.31 (gl "gfetch");
  Alcotest.(check (float 0.05)) "primes1 uses mixed ratio" 1.98 (gl "primes1")

let test_measure_protocol () =
  let app = Option.get (Numa_apps.Registry.find "parmult") in
  let m = Runner.measure app (small_spec ()) in
  (* ParMult: the three times coincide (beta = 0). *)
  let t = m.Runner.times in
  Alcotest.(check bool) "t_local <= t_numa" true
    (t.Model.t_local <= t.Model.t_numa *. 1.01);
  Alcotest.(check (float 0.02)) "gamma ~ 1" 1.0 m.Runner.gamma;
  Alcotest.(check bool) "t_local measured on one cpu" true
    (m.Runner.r_local.Report.n_cpus = 1 && m.Runner.r_local.Report.n_threads = 1);
  Alcotest.(check bool) "t_global under all-global" true
    (m.Runner.r_global.Report.policy_name = "all-global")

(* --- tables ---------------------------------------------------------------------- *)

let test_table3_rows_render () =
  let app = Option.get (Numa_apps.Registry.find "imatmult") in
  let rows = Table3.run ~apps:[ app ] ~spec:(small_spec ~scale:0.1 ()) () in
  Alcotest.(check int) "one row" 1 (List.length rows);
  let rendered = Table3.render rows in
  let contains sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions the app" true (contains "imatmult" rendered);
  Alcotest.(check bool) "has the Tglobal column" true (contains "Tglobal" rendered);
  let cmp = Table3.render_comparison rows in
  Alcotest.(check bool) "comparison cites paper value 0.94" true (contains "0.94" cmp)

let test_table4_from_measurements () =
  let apps = List.filter_map Numa_apps.Registry.find [ "imatmult"; "primes3" ] in
  let rows = Table3.run ~apps ~spec:(small_spec ~scale:0.1 ()) () in
  let t4 = Table4.of_measurements rows in
  Alcotest.(check int) "both are table-4 apps" 2 (List.length t4);
  List.iter
    (fun (r : Table4.row) ->
      Alcotest.(check bool) "system time present in numa runs" true (r.Table4.s_numa > 0.);
      match r.Table4.delta_s with
      | Some d ->
          Alcotest.(check (float 1e-6)) "overhead consistent"
            (100. *. d /. r.Table4.t_numa)
            r.Table4.overhead_pct
      | None -> ())
    t4;
  (* parmult is not a table-4 program: filtered out. *)
  let p3 = Table3.run ~apps:[ Option.get (Numa_apps.Registry.find "parmult") ]
      ~spec:(small_spec ()) () in
  Alcotest.(check int) "non-table-4 app filtered" 0
    (List.length (Table4.of_measurements p3))

(* --- ablations ---------------------------------------------------------------------- *)

let test_threshold_sweep_never_pin_thrashes () =
  let rows =
    Ablations.threshold_sweep
      ~apps:[ Option.get (Numa_apps.Registry.find "primes3") ]
      ~thresholds:[ Some 4; None ]
      ~spec:(small_spec ()) ()
  in
  match rows with
  | [ limited; unlimited ] ->
      Alcotest.(check bool) "never-pin never pins" true (unlimited.Ablations.ts_pins = 0);
      Alcotest.(check bool) "never-pin moves much more" true
        (unlimited.Ablations.ts_moves > 2 * limited.Ablations.ts_moves);
      Alcotest.(check bool) "never-pin pays more system time" true
        (unlimited.Ablations.ts_t_system > limited.Ablations.ts_t_system)
  | _ -> Alcotest.fail "expected two rows"

let test_pragma_study_cuts_moves () =
  match Ablations.pragma_study ~spec:(small_spec ()) () with
  | [ plain; pragma ] ->
      Alcotest.(check bool) "pragma reduces moves" true
        (pragma.Ablations.pr_moves < plain.Ablations.pr_moves)
  | _ -> Alcotest.fail "expected two rows"

let test_unix_master_study () =
  match Ablations.unix_master_study ~spec:(small_spec ~scale:0.2 ()) () with
  | [ master; fixed ] ->
      Alcotest.(check bool) "master leaks stacks to global" true
        (master.Ablations.um_stack_global_refs > 0);
      Alcotest.(check int) "fixed kernel leaks nothing" 0
        fixed.Ablations.um_stack_global_refs
  | _ -> Alcotest.fail "expected two rows"

let test_reconsider_study () =
  match Ablations.reconsider_study ~spec:(small_spec ~scale:0.5 ()) ~window_ms:20. () with
  | [ fixed; reconsider ] ->
      Alcotest.(check bool) "reconsideration frees pages from global" true
        (reconsider.Ablations.rc_final_global_pages < fixed.Ablations.rc_final_global_pages);
      Alcotest.(check bool) "and saves user time" true
        (reconsider.Ablations.rc_user < fixed.Ablations.rc_user)
  | _ -> Alcotest.fail "expected two rows"

(* --- policy tournament ------------------------------------------------------ *)

let test_tournament_small_matrix () =
  let module Tournament = Numa_metrics.Tournament in
  let module System = Numa_system.System in
  let policies = [ System.Move_limit { threshold = 4 }; System.All_global ] in
  let apps =
    List.filter_map Numa_apps.Registry.find [ "primes1"; "parmult" ]
  in
  Alcotest.(check int) "both apps registered" 2 (List.length apps);
  let spec = small_spec () in
  let rows = Tournament.run ~jobs:1 ~policies ~apps ~spec () in
  Alcotest.(check int) "one row per policy" 2 (List.length rows);
  List.iter
    (fun (r : Tournament.row) ->
      Alcotest.(check int) "one cell per app" 2 (List.length r.Tournament.cells);
      Alcotest.(check (list string))
        "cells keep app order" [ "primes1"; "parmult" ]
        (List.map (fun (c : Tournament.cell) -> c.Tournament.app_name) r.Tournament.cells);
      Alcotest.(check bool) "mean gamma is a number" false
        (Float.is_nan r.Tournament.mean_gamma))
    rows;
  (match rows with
  | [ best; worst ] ->
      Alcotest.(check bool) "rows sorted best (smallest gamma) first" true
        (best.Tournament.mean_gamma <= worst.Tournament.mean_gamma)
  | _ -> Alcotest.fail "expected two rows");
  (* The matrix is deterministic regardless of how it is fanned out. *)
  let rows4 = Tournament.run ~jobs:4 ~policies ~apps ~spec () in
  Alcotest.(check string) "parallel fan-out changes nothing"
    (Numa_obs.Json.to_string (Tournament.to_json ~topology:"ace" rows))
    (Numa_obs.Json.to_string (Tournament.to_json ~topology:"ace" rows4))

let test_tournament_json_artifact () =
  let module Tournament = Numa_metrics.Tournament in
  let module System = Numa_system.System in
  let policies = [ System.Never_pin ] in
  let apps = List.filter_map Numa_apps.Registry.find [ "primes1" ] in
  let rows = Tournament.run ~jobs:1 ~policies ~apps ~spec:(small_spec ()) () in
  let s = Numa_obs.Json.to_string (Tournament.to_json ~topology:"ace" rows) in
  (match Numa_obs.Json.check_structure s with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "malformed tournament JSON: %s" msg);
  match Numa_obs.Json.required_keys s ~keys:[ "topology"; "policies"; "mean_gamma"; "apps" ]
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "tournament JSON misses a key: %s" msg

let test_paper_values_lookup () =
  Alcotest.(check bool) "table3 lookup" true (Paper_values.find_table3 "fft" <> None);
  Alcotest.(check bool) "table4 lookup" true (Paper_values.find_table4 "primes3" <> None);
  Alcotest.(check bool) "missing app" true (Paper_values.find_table3 "nope" = None);
  (* Primes1's Delta-S is the paper's "na". *)
  match Paper_values.find_table4 "primes1" with
  | Some r -> Alcotest.(check bool) "primes1 na" true (r.Paper_values.delta_s = None)
  | None -> Alcotest.fail "primes1 missing"

let suite =
  [
    Alcotest.test_case "equations recover paper's parameters" `Quick
      test_equations_on_paper_rows;
    Alcotest.test_case "equation 2 forward" `Quick test_equation2_forward;
    Alcotest.test_case "valid_times" `Quick test_valid_times;
    Alcotest.test_case "per-app G/L selection" `Quick test_app_gl_selection;
    Alcotest.test_case "measure protocol" `Quick test_measure_protocol;
    Alcotest.test_case "table 3 rows render" `Quick test_table3_rows_render;
    Alcotest.test_case "table 4 derivation" `Quick test_table4_from_measurements;
    Alcotest.test_case "threshold sweep: never-pin thrashes" `Slow
      test_threshold_sweep_never_pin_thrashes;
    Alcotest.test_case "pragma study cuts moves" `Quick test_pragma_study_cuts_moves;
    Alcotest.test_case "unix-master study" `Quick test_unix_master_study;
    Alcotest.test_case "reconsider study" `Quick test_reconsider_study;
    Alcotest.test_case "paper values lookup" `Quick test_paper_values_lookup;
    Alcotest.test_case "policy tournament small matrix" `Quick
      test_tournament_small_matrix;
    Alcotest.test_case "policy tournament JSON artifact" `Quick
      test_tournament_json_artifact;
  ]
