(* Edge cases and semantic details across the stack. *)

open Numa_machine
module System = Numa_system.System
module Report = Numa_system.Report
module Api = Numa_sim.Api
module Region_attr = Numa_vm.Region_attr

let small_config ?(n_cpus = 4) () =
  Config.ace ~n_cpus ~local_pages_per_cpu:64 ~global_pages:256 ()

let test_zero_fill_read_semantics () =
  (* The first read of never-written memory observes zeros, on every CPU,
     both before and after another CPU writes a different page. *)
  let sys = System.create ~config:(small_config ()) () in
  let r =
    System.alloc_region sys ~name:"fresh" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_write_shared ~pages:2 ()
  in
  let seen = ref [] in
  let barrier = System.make_barrier sys ~name:"b" ~parties:2 in
  ignore
    (System.spawn sys ~cpu:0 ~name:"a" (fun ~stack_vpage:_ ->
         seen := Api.read_value r.System.base_vpage :: !seen;
         Api.write ~value:9 (r.System.base_vpage + 1);
         Api.barrier barrier));
  ignore
    (System.spawn sys ~cpu:1 ~name:"b" (fun ~stack_vpage:_ ->
         Api.barrier barrier;
         seen := Api.read_value r.System.base_vpage :: !seen));
  ignore (System.run sys);
  Alcotest.(check (list int)) "zero-filled everywhere" [ 0; 0 ] !seen

let test_lpage_mapping_lifecycle () =
  let sys = System.create ~config:(small_config ()) () in
  let r =
    System.alloc_region sys ~name:"d" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_private ~pages:2 ()
  in
  Alcotest.(check (option int)) "not materialised before touch" None
    (System.lpage_of sys ~vpage:r.System.base_vpage ());
  Alcotest.(check bool) "region lookup works" true
    (System.region_at sys ~vpage:(r.System.base_vpage + 1) () <> None);
  Alcotest.(check bool) "unmapped address has no region" true
    (System.region_at sys ~vpage:9999 () = None);
  ignore
    (System.spawn sys ~name:"t" (fun ~stack_vpage:_ -> Api.write r.System.base_vpage));
  ignore (System.run sys);
  Alcotest.(check bool) "materialised after touch" true
    (System.lpage_of sys ~vpage:r.System.base_vpage () <> None);
  Alcotest.(check (option int)) "untouched page still empty" None
    (System.lpage_of sys ~vpage:(r.System.base_vpage + 1) ())

let test_spawn_round_robin_default () =
  let sys = System.create ~config:(small_config ~n_cpus:3 ()) () in
  let cpus = ref [] in
  for i = 0 to 5 do
    ignore
      (System.spawn sys ~name:(Printf.sprintf "t%d" i) (fun ~stack_vpage ->
           Api.read stack_vpage))
  done;
  ignore (System.run sys);
  let engine = System.engine sys in
  for tid = 0 to 5 do
    cpus := Numa_sim.Engine.thread_cpu engine ~tid :: !cpus
  done;
  Alcotest.(check (list int)) "round robin over 3 cpus" [ 0; 1; 2; 0; 1; 2 ]
    (List.rev !cpus)

let test_region_attr_predicates () =
  let code =
    Region_attr.v ~name:"c" ~kind:Region_attr.Code ~sharing:Region_attr.Declared_read_shared
      ()
  in
  let stack =
    Region_attr.v ~name:"s" ~kind:(Region_attr.Stack 3)
      ~sharing:Region_attr.Declared_private ()
  in
  Alcotest.(check bool) "code is not writable data" false
    (Region_attr.is_writable_data code);
  Alcotest.(check bool) "stack is writable data" true (Region_attr.is_writable_data stack)

let test_app_parameter_floors () =
  Alcotest.(check bool) "primes1 floor" true (Numa_apps.Primes1.limit 0.0000001 >= 1_000);
  Alcotest.(check bool) "primes3 floor" true (Numa_apps.Primes3.limit 0.0000001 >= 20_000);
  Alcotest.(check bool) "imatmult floor" true (Numa_apps.Imatmult.dimension 1e-9 >= 8);
  (* fft dimension is a power of two at any scale. *)
  List.iter
    (fun scale ->
      let n = Numa_apps.Fft.dimension scale in
      Alcotest.(check bool) "power of two" true (n land (n - 1) = 0))
    [ 0.001; 0.01; 0.1; 0.5; 1.0; 2.0 ];
  (* dimensions grow with scale *)
  Alcotest.(check bool) "imatmult monotone" true
    (Numa_apps.Imatmult.dimension 0.1 <= Numa_apps.Imatmult.dimension 1.0)

let test_runner_gl_flags () =
  let config = Config.ace () in
  List.iter
    (fun (name, fetchy) ->
      let app = Option.get (Numa_apps.Registry.find name) in
      let gl = Numa_metrics.Runner.app_gl app config in
      if fetchy then
        Alcotest.(check (float 0.05)) (name ^ " uses 2.3") 2.31 gl
      else Alcotest.(check (float 0.05)) (name ^ " uses ~2") 1.98 gl)
    [ ("gfetch", true); ("imatmult", true); ("fft", false); ("plytrace", false) ]

let test_trace_totals_match_report () =
  let sys = System.create ~config:(small_config ()) () in
  let buffer = Numa_trace.Trace_buffer.create () in
  Numa_trace.Trace_buffer.attach buffer sys;
  let r =
    System.alloc_region sys ~name:"d" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_private ~pages:1 ()
  in
  ignore
    (System.spawn sys ~name:"t" (fun ~stack_vpage ->
         Api.write ~count:123 r.System.base_vpage;
         Api.read ~count:77 stack_vpage));
  let report = System.run sys in
  Alcotest.(check int) "trace references = report references"
    (Report.total_refs report.Report.refs_all)
    (Numa_trace.Trace_buffer.total_references buffer)

let test_code_region_rejects_writes () =
  let sys = System.create ~config:(small_config ()) () in
  let code =
    System.alloc_region sys ~name:"text" ~kind:Region_attr.Code
      ~sharing:Region_attr.Declared_read_shared ~pages:1 ()
  in
  ignore
    (System.spawn sys ~name:"t" (fun ~stack_vpage:_ -> Api.write code.System.base_vpage));
  Alcotest.(check bool) "write to code faults fatally" true
    (match System.run sys with
    | _ -> false
    | exception Failure _ -> true)

let test_report_placement_totals () =
  let config = small_config () in
  let sys = System.create ~config () in
  let r =
    System.alloc_region sys ~name:"d" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_private ~pages:3 ()
  in
  ignore
    (System.spawn sys ~name:"t" (fun ~stack_vpage:_ ->
         for p = 0 to 2 do
           Api.write (r.System.base_vpage + p)
         done));
  let report = System.run sys in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 report.Report.placement in
  Alcotest.(check int) "placement partitions the pool" config.Config.global_pages total

let suite =
  [
    Alcotest.test_case "zero-fill read semantics" `Quick test_zero_fill_read_semantics;
    Alcotest.test_case "lpage mapping lifecycle" `Quick test_lpage_mapping_lifecycle;
    Alcotest.test_case "spawn round robin" `Quick test_spawn_round_robin_default;
    Alcotest.test_case "region attr predicates" `Quick test_region_attr_predicates;
    Alcotest.test_case "app parameter floors" `Quick test_app_parameter_floors;
    Alcotest.test_case "runner G/L flags" `Quick test_runner_gl_flags;
    Alcotest.test_case "trace totals match report" `Quick test_trace_totals_match_report;
    Alcotest.test_case "code region rejects writes" `Quick test_code_region_rejects_writes;
    Alcotest.test_case "report placement totals" `Quick test_report_placement_totals;
  ]
