(* The served-traffic workload family: the synthetic samplers behind it
   (zipf popularity, bursty Poisson arrivals), the engine's open-loop
   timer, and the serve app end to end — the serving report section, its
   JSON round-trip, run determinism, and the policy tail-latency spread
   the serve sweep measures. *)

open Numa_util
module Dist = Numa_util.Dist
module Engine = Numa_sim.Engine
module Api = Numa_sim.Api
module Memory_iface = Numa_sim.Memory_iface
module Config = Numa_machine.Config
module Report = Numa_system.Report
module Runner = Numa_metrics.Runner
module Serve = Numa_apps.Serve

(* --- samplers ---------------------------------------------------------------------- *)

let test_zipf_deterministic () =
  let draw () =
    let z = Dist.zipf ~n:64 ~theta:0.9 in
    let p = Prng.create ~seed:7L in
    Array.init 500 (fun _ -> Dist.zipf_draw z p)
  in
  Alcotest.(check (array int)) "same seed, same draws" (draw ()) (draw ())

let test_zipf_mass_normalised () =
  let z = Dist.zipf ~n:100 ~theta:1.1 in
  let total = ref 0. in
  for k = 0 to 99 do
    total := !total +. Dist.zipf_mass z k
  done;
  Alcotest.(check (float 1e-9)) "masses sum to 1" 1.0 !total;
  Alcotest.(check bool) "mass is rank-decreasing" true
    (Dist.zipf_mass z 0 > Dist.zipf_mass z 1
    && Dist.zipf_mass z 1 > Dist.zipf_mass z 50)

(* A chi-squared-style check: empirical counts against the exact masses.
   With 20000 draws over 16 keys the statistic is ~chi2(15); 60 is far
   beyond any plausible quantile (p < 1e-6) yet robust to seed choice. *)
let test_zipf_frequencies_match_mass () =
  let n = 16 and draws = 20_000 in
  let z = Dist.zipf ~n ~theta:0.8 in
  let p = Prng.create ~seed:11L in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let k = Dist.zipf_draw z p in
    counts.(k) <- counts.(k) + 1
  done;
  let chi2 = ref 0. in
  for k = 0 to n - 1 do
    let expect = float_of_int draws *. Dist.zipf_mass z k in
    let d = float_of_int counts.(k) -. expect in
    chi2 := !chi2 +. (d *. d /. expect)
  done;
  if !chi2 > 60. then
    Alcotest.failf "zipf chi-squared statistic %.1f (expected < 60)" !chi2;
  (* The skew must actually be visible: rank 0 beats the tail soundly. *)
  Alcotest.(check bool) "head key dominates last" true
    (counts.(0) > 3 * counts.(n - 1))

let test_arrival_times_strictly_increasing () =
  let a = Dist.arrival ~rate_per_s:200_000. ~burst:4. () in
  let ts = Dist.arrival_times a (Prng.create ~seed:3L) ~n:5_000 in
  Array.iteri
    (fun i t ->
      if i > 0 && t <= ts.(i - 1) then
        Alcotest.failf "arrival %d not after its predecessor" i)
    ts

let test_arrival_rate_plausible () =
  (* Open-loop Poisson at 100k/s with 4x bursts 10 ms of every 60 ms:
     effective mean rate = 100k * (50 + 4*10)/60 = 150k/s. The empirical
     rate over 30k arrivals should land within a few percent. *)
  let a = Dist.arrival ~rate_per_s:100_000. ~burst:4. () in
  let n = 30_000 in
  let ts = Dist.arrival_times a (Prng.create ~seed:5L) ~n in
  let rate = float_of_int (n - 1) /. (ts.(n - 1) -. ts.(0)) *. 1e9 in
  if rate < 135_000. || rate > 165_000. then
    Alcotest.failf "empirical arrival rate %.0f/s outside [135k, 165k]" rate

let test_arrival_spec_roundtrip () =
  (match Dist.arrival_of_string "250000:8" with
  | Error e -> Alcotest.fail e
  | Ok a ->
      Alcotest.(check string) "round-trips" "250000:8"
        (Dist.arrival_to_string a));
  match Dist.arrival_of_string "fast:please" with
  | Ok _ -> Alcotest.fail "junk spec parsed"
  | Error _ -> ()

(* --- the open-loop timer ----------------------------------------------------------- *)

let test_sleep_until_parks_without_charging () =
  let machine = Config.ace ~n_cpus:2 () in
  let memory = Memory_iface.flat machine in
  let e =
    Engine.create (Engine.default_config ~n_cpus:2) ~memory ~scheduler:Engine.Affinity
  in
  ignore
    (Engine.spawn e ~cpu:0 ~name:"t" (fun () ->
         Api.sleep_until ~ns:2e6;
         Api.compute 1e5));
  Engine.run e;
  (* The park itself costs nothing; the wait is idle time, so elapsed is
     deadline + compute while user time is the compute alone. *)
  Alcotest.(check (float 1.)) "user = just the compute" 1e5 (Engine.user_ns e ~cpu:0);
  Alcotest.(check (float 1.)) "elapsed = deadline + compute" 2.1e6 (Engine.elapsed_ns e)

let test_sleep_until_past_deadline_is_noop () =
  let machine = Config.ace ~n_cpus:2 () in
  let memory = Memory_iface.flat machine in
  let e =
    Engine.create (Engine.default_config ~n_cpus:2) ~memory ~scheduler:Engine.Affinity
  in
  ignore
    (Engine.spawn e ~cpu:0 ~name:"t" (fun () ->
         Api.compute 5e6;
         Api.sleep_until ~ns:1e6;
         (* already behind: resumes immediately *)
         Api.compute 1e6));
  Engine.run e;
  Alcotest.(check (float 1.)) "no backwards time travel" 6e6 (Engine.elapsed_ns e)

(* --- the serve app end to end ------------------------------------------------------ *)

let small_spec =
  {
    Runner.default_spec with
    Runner.scale = 0.02;
    n_cpus = 4;
    nthreads = 4;
  }

let serving_of r =
  match r.Report.serving with
  | Some s -> s
  | None -> Alcotest.fail "serve run produced no serving section"

let test_serve_report_section () =
  let r = Runner.run Serve.app small_spec in
  let s = serving_of r in
  Alcotest.(check int) "every request served"
    (Serve.requests_for small_spec.Runner.scale)
    s.Report.requests;
  Alcotest.(check int) "workers cover the shards" 4
    (Array.length s.Report.per_worker_served);
  Alcotest.(check int) "per-worker counts sum to the total" s.Report.requests
    (Array.fold_left ( + ) 0 s.Report.per_worker_served);
  let ordered =
    s.Report.p50_us <= s.Report.p95_us
    && s.Report.p95_us <= s.Report.p99_us
    && s.Report.p99_us <= s.Report.p999_us
    && s.Report.p999_us <= s.Report.max_us
  in
  Alcotest.(check bool) "percentiles are ordered" true ordered;
  Alcotest.(check bool) "positive throughput" true (s.Report.throughput_rps > 0.);
  Alcotest.(check bool) "queueing never exceeds total latency" true
    (s.Report.queue_mean_us <= s.Report.mean_us)

let test_serve_json_roundtrip () =
  let r = Runner.run Serve.app small_spec in
  let s = serving_of r in
  let text = Numa_obs.Json.to_string (Report.to_json r) in
  match Numa_obs.Json.parse text with
  | Error e -> Alcotest.failf "report JSON does not parse back: %s" e
  | Ok json -> (
      match Numa_obs.Json.member json "serving" with
      | None -> Alcotest.fail "no serving key in report JSON"
      | Some sv ->
          let int_field name =
            match Option.bind (Numa_obs.Json.member sv name) Numa_obs.Json.to_float with
            | Some f -> int_of_float f
            | None -> Alcotest.failf "serving.%s missing" name
          in
          Alcotest.(check int) "requests round-trip" s.Report.requests
            (int_field "requests");
          Alcotest.(check int) "p99 round-trips" s.Report.p99_us (int_field "p99_us");
          Alcotest.(check int) "p99.9 round-trips" s.Report.p999_us
            (int_field "p999_us"))

let test_batch_apps_have_no_serving_section () =
  let app = Option.get (Numa_apps.Registry.find "primes1") in
  let r = Runner.run app { small_spec with Runner.scale = 0.1 } in
  Alcotest.(check bool) "batch report omits serving" true (r.Report.serving = None)

let test_serve_run_deterministic () =
  let once () =
    Numa_obs.Json.to_string (Report.to_json (Runner.run Serve.app small_spec))
  in
  Alcotest.(check string) "byte-identical reports" (once ()) (once ())

let test_policy_tail_spread () =
  (* The sweep's reason to exist: identical offered load, different
     placement policy, visibly different tail. Never-pin turns the shared
     session page into a migration ping-pong (~1 ms per copy), so its p99
     must sit far above all-global's; move-limit stops the bleeding. *)
  let run policy =
    serving_of (Runner.run Serve.app { small_spec with Runner.policy })
  in
  let ml = run (Numa_system.System.Move_limit { threshold = 4 }) in
  let ag = run Numa_system.System.All_global in
  let np = run Numa_system.System.Never_pin in
  Alcotest.(check bool) "never-pin tail >= 10x all-global tail" true
    (np.Report.p99_us > 10 * ag.Report.p99_us);
  Alcotest.(check bool) "move-limit contains the never-pin pathology" true
    (ml.Report.p99_us < np.Report.p99_us)

let suite =
  [
    Alcotest.test_case "zipf draws deterministic" `Quick test_zipf_deterministic;
    Alcotest.test_case "zipf mass normalised" `Quick test_zipf_mass_normalised;
    Alcotest.test_case "zipf frequencies match mass" `Quick
      test_zipf_frequencies_match_mass;
    Alcotest.test_case "arrival times strictly increasing" `Quick
      test_arrival_times_strictly_increasing;
    Alcotest.test_case "arrival rate plausible" `Quick test_arrival_rate_plausible;
    Alcotest.test_case "arrival spec round-trip" `Quick test_arrival_spec_roundtrip;
    Alcotest.test_case "sleep_until parks without charging" `Quick
      test_sleep_until_parks_without_charging;
    Alcotest.test_case "sleep_until past deadline is a no-op" `Quick
      test_sleep_until_past_deadline_is_noop;
    Alcotest.test_case "serve report section" `Quick test_serve_report_section;
    Alcotest.test_case "serve JSON round-trip" `Quick test_serve_json_roundtrip;
    Alcotest.test_case "batch apps omit serving" `Quick
      test_batch_apps_have_no_serving_section;
    Alcotest.test_case "serve run deterministic" `Quick test_serve_run_deterministic;
    Alcotest.test_case "policy tail spread" `Quick test_policy_tail_spread;
  ]
