(* Regenerates the golden reference outputs under test/golden/.

   The determinism suite asserts that the default-ACE configuration keeps
   producing byte-identical reports across refactors of the machine model
   (the PR-2/PR-3 regression guard). Run this tool ONLY when an
   intentional behaviour change invalidates the goldens, and review the
   diff of the regenerated files like any other code change:

     dune exec test/gen_golden/gen_golden.exe -- test/golden
*)

module System = Numa_system.System
module Report = Numa_system.Report
module Runner = Numa_metrics.Runner
module Table3 = Numa_metrics.Table3
module App_sig = Numa_apps.App_sig

let run_app name ~scale =
  let app = Option.get (Numa_apps.Registry.find name) in
  let config = Numa_machine.Config.ace ~n_cpus:4 () in
  let sys = System.create ~config () in
  app.App_sig.setup sys { App_sig.nthreads = 4; scale; seed = 42L };
  System.run sys

let write path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" path (String.length contents)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  let report = run_app "imatmult" ~scale:0.03 in
  write
    (Filename.concat dir "report_imatmult_ace.json")
    (Numa_obs.Json.to_string (Report.to_json report));
  write
    (Filename.concat dir "report_imatmult_ace.txt")
    (Format.asprintf "%a@." Report.pp report);
  let spec = { Runner.default_spec with Runner.scale = 0.05; n_cpus = 4; nthreads = 4 } in
  let apps = List.filter_map Numa_apps.Registry.find [ "imatmult"; "primes3" ] in
  let rows = Table3.run ~apps ~spec () in
  write
    (Filename.concat dir "table3_small_ace.txt")
    (Table3.render rows ^ "\n" ^ Table3.render_comparison rows)
