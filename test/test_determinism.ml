(* Simulation-quality properties: determinism across reruns, and the
   robustness of results to the engine's discretisation knobs. *)

module System = Numa_system.System
module Report = Numa_system.Report
module Runner = Numa_metrics.Runner
module App_sig = Numa_apps.App_sig

let fingerprint (r : Report.t) =
  ( r.Report.total_user_ns,
    r.Report.total_system_ns,
    Report.total_refs r.Report.refs_all,
    r.Report.numa_moves,
    r.Report.pins,
    r.Report.n_events )

let run_app ?(chunk_refs = 2048) name ~scale =
  let app = Option.get (Numa_apps.Registry.find name) in
  let config = Numa_machine.Config.ace ~n_cpus:4 () in
  let sys = System.create ~chunk_refs ~config () in
  app.App_sig.setup sys { App_sig.nthreads = 4; scale; seed = 42L };
  System.run sys

let test_reruns_identical () =
  List.iter
    (fun name ->
      let a = fingerprint (run_app name ~scale:0.03) in
      let b = fingerprint (run_app name ~scale:0.03) in
      if a <> b then Alcotest.failf "%s: two identical runs disagreed" name)
    [ "imatmult"; "primes3"; "plytrace"; "gfetch" ]

let test_seed_changes_plytrace () =
  (* plytrace's scene layout is seeded; different seeds must change the
     image access pattern (and generally the timings). *)
  let app = Option.get (Numa_apps.Registry.find "plytrace") in
  let run seed =
    let config = Numa_machine.Config.ace ~n_cpus:4 () in
    let sys = System.create ~config () in
    app.App_sig.setup sys { App_sig.nthreads = 4; scale = 0.05; seed };
    fingerprint (System.run sys)
  in
  Alcotest.(check bool) "seed matters" true (run 1L <> run 2L)

let test_single_thread_chunk_invariance () =
  (* A single-threaded run has no interleaving, so the chunk size must not
     change any reference count or placement outcome, and user time must
     agree to rounding. *)
  let get chunk_refs =
    let app = Option.get (Numa_apps.Registry.find "imatmult") in
    let config = Numa_machine.Config.ace ~n_cpus:1 () in
    let sys = System.create ~chunk_refs ~config () in
    app.App_sig.setup sys { App_sig.nthreads = 1; scale = 0.02; seed = 42L };
    let r = System.run sys in
    ( Report.total_refs r.Report.refs_all,
      r.Report.numa_moves,
      r.Report.pins,
      r.Report.total_user_ns )
  in
  let r64, m64, p64, u64 = get 64 in
  let r4096, m4096, p4096, u4096 = get 4096 in
  Alcotest.(check int) "refs invariant" r64 r4096;
  Alcotest.(check int) "moves invariant" m64 m4096;
  Alcotest.(check int) "pins invariant" p64 p4096;
  Alcotest.(check (float 1.)) "user time invariant" u64 u4096

let test_multithread_chunk_robustness () =
  (* Across threads, chunking changes interleaving details but not the
     placement story: the sieve still pins and alpha stays in its band. *)
  let get chunk_refs =
    let r = run_app ~chunk_refs "primes3" ~scale:0.03 in
    (r.Report.pins, r.Report.alpha_counted)
  in
  let pins_small, alpha_small = get 256 in
  let pins_large, alpha_large = get 8192 in
  Alcotest.(check bool) "pins under both" true (pins_small > 3 && pins_large > 3);
  Alcotest.(check bool) "alpha band stable" true
    (Float.abs (alpha_small -. alpha_large) < 0.25)

let test_scale_monotonicity () =
  (* More work means more simulated time — a sanity check on scaling. *)
  let user scale = (run_app "primes1" ~scale).Report.total_user_ns in
  Alcotest.(check bool) "monotone in scale" true (user 0.02 < user 0.06)

let suite =
  [
    Alcotest.test_case "reruns are bit-identical" `Quick test_reruns_identical;
    Alcotest.test_case "seed changes plytrace" `Quick test_seed_changes_plytrace;
    Alcotest.test_case "single-thread chunk invariance" `Quick
      test_single_thread_chunk_invariance;
    Alcotest.test_case "multi-thread chunk robustness" `Quick
      test_multithread_chunk_robustness;
    Alcotest.test_case "scale monotonicity" `Quick test_scale_monotonicity;
  ]
