(* Simulation-quality properties: determinism across reruns, and the
   robustness of results to the engine's discretisation knobs. *)

module System = Numa_system.System
module Report = Numa_system.Report
module Runner = Numa_metrics.Runner
module App_sig = Numa_apps.App_sig

let fingerprint (r : Report.t) =
  ( r.Report.total_user_ns,
    r.Report.total_system_ns,
    Report.total_refs r.Report.refs_all,
    r.Report.numa_moves,
    r.Report.pins,
    r.Report.n_events )

let audited sys r =
  (* Every run in this suite ends with a full protocol-invariant sweep; the
     audit runs after the report is built, so the goldens stay frozen. *)
  (match Numa_core.Invariant.result (System.audit sys) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "post-run invariant violation: %s" msg);
  r

let run_app ?(chunk_refs = 2048) name ~scale =
  let app = Option.get (Numa_apps.Registry.find name) in
  let config = Numa_machine.Config.ace ~n_cpus:4 () in
  let sys = System.create ~chunk_refs ~config () in
  app.App_sig.setup sys { App_sig.nthreads = 4; scale; seed = 42L };
  audited sys (System.run sys)

let test_reruns_identical () =
  List.iter
    (fun name ->
      let a = fingerprint (run_app name ~scale:0.03) in
      let b = fingerprint (run_app name ~scale:0.03) in
      if a <> b then Alcotest.failf "%s: two identical runs disagreed" name)
    [ "imatmult"; "primes3"; "plytrace"; "gfetch" ]

let test_seed_changes_plytrace () =
  (* plytrace's scene layout is seeded; different seeds must change the
     image access pattern (and generally the timings). *)
  let app = Option.get (Numa_apps.Registry.find "plytrace") in
  let run seed =
    let config = Numa_machine.Config.ace ~n_cpus:4 () in
    let sys = System.create ~config () in
    app.App_sig.setup sys { App_sig.nthreads = 4; scale = 0.05; seed };
    fingerprint (System.run sys)
  in
  Alcotest.(check bool) "seed matters" true (run 1L <> run 2L)

let test_single_thread_chunk_invariance () =
  (* A single-threaded run has no interleaving, so the chunk size must not
     change any reference count or placement outcome, and user time must
     agree to rounding. *)
  let get chunk_refs =
    let app = Option.get (Numa_apps.Registry.find "imatmult") in
    let config = Numa_machine.Config.ace ~n_cpus:1 () in
    let sys = System.create ~chunk_refs ~config () in
    app.App_sig.setup sys { App_sig.nthreads = 1; scale = 0.02; seed = 42L };
    let r = System.run sys in
    ( Report.total_refs r.Report.refs_all,
      r.Report.numa_moves,
      r.Report.pins,
      r.Report.total_user_ns )
  in
  let r64, m64, p64, u64 = get 64 in
  let r4096, m4096, p4096, u4096 = get 4096 in
  Alcotest.(check int) "refs invariant" r64 r4096;
  Alcotest.(check int) "moves invariant" m64 m4096;
  Alcotest.(check int) "pins invariant" p64 p4096;
  Alcotest.(check (float 1.)) "user time invariant" u64 u4096

let test_multithread_chunk_robustness () =
  (* Across threads, chunking changes interleaving details but not the
     placement story: the sieve still pins and alpha stays in its band. *)
  let get chunk_refs =
    let r = run_app ~chunk_refs "primes3" ~scale:0.03 in
    (r.Report.pins, r.Report.alpha_counted)
  in
  let pins_small, alpha_small = get 256 in
  let pins_large, alpha_large = get 8192 in
  Alcotest.(check bool) "pins under both" true (pins_small > 3 && pins_large > 3);
  Alcotest.(check bool) "alpha band stable" true
    (Float.abs (alpha_small -. alpha_large) < 0.25)

let test_scale_monotonicity () =
  (* More work means more simulated time — a sanity check on scaling. *)
  let user scale = (run_app "primes1" ~scale).Report.total_user_ns in
  Alcotest.(check bool) "monotone in scale" true (user 0.02 < user 0.06)

(* --- byte-identical reports and the parallel runner ---------------------- *)

let report_bytes r = Numa_obs.Json.to_string (Report.to_json r)

let test_rerun_reports_byte_identical () =
  (* Stronger than the fingerprint check: the entire serialized report —
     every counter, every float, the TLB block — must match byte for byte
     across two runs of the same (app, policy, seed). *)
  List.iter
    (fun name ->
      let a = report_bytes (run_app name ~scale:0.03) in
      let b = report_bytes (run_app name ~scale:0.03) in
      Alcotest.(check string) (name ^ " report bytes") a b)
    [ "imatmult"; "primes3" ]

let test_parallel_map_matches_sequential () =
  let items = List.init 37 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "order and values preserved" (List.map f items)
    (Numa_metrics.Parallel.map ~jobs:4 f items);
  Alcotest.(check (list int)) "more jobs than items" (List.map f items)
    (Numa_metrics.Parallel.map ~jobs:64 f items);
  Alcotest.(check (list int)) "empty input" []
    (Numa_metrics.Parallel.map ~jobs:4 f [])

let test_parallel_map_propagates_exceptions () =
  match
    Numa_metrics.Parallel.map ~jobs:3
      (fun x -> if x = 5 then failwith "boom" else x)
      (List.init 8 Fun.id)
  with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure msg -> Alcotest.(check string) "original exception" "boom" msg

let test_parallel_runner_bit_identical () =
  (* The tentpole contract: distributing the measurement matrix over
     domains changes wall-clock only. Every byte of every report — numa,
     global and local runs alike — matches the sequential runner. *)
  let apps = List.filter_map Numa_apps.Registry.find [ "imatmult"; "primes3"; "gfetch" ] in
  let spec = { Runner.default_spec with Runner.scale = 0.05 } in
  let seq = Runner.measure_many apps spec in
  let par = Runner.measure_many ~jobs:2 apps spec in
  Alcotest.(check int) "same number of measurements" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Runner.measurement) (b : Runner.measurement) ->
      Alcotest.(check string) (a.Runner.app_name ^ " full measurement bytes")
        (Numa_obs.Json.to_string (Runner.measurement_to_json a))
        (Numa_obs.Json.to_string (Runner.measurement_to_json b)))
    seq par

(* --- golden files: the default ACE is frozen ----------------------------- *)

(* The files under test/golden/ were generated (by test/gen_golden) from the
   machine model BEFORE the N-node topology refactor. These checks pin the
   default-ACE configuration to those bytes: generalising the model must not
   change a single float of the classic two-level reports. Regenerate the
   goldens only for an intentional behaviour change, and review the diff. *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let golden name =
  (* cwd is test/ under `dune runtest`, the project root under `dune exec`. *)
  let candidates = [ Filename.concat "golden" name; Filename.concat "test/golden" name ] in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> read_file path
  | None -> Alcotest.failf "golden file %s not found (cwd %s)" name (Sys.getcwd ())

let golden_report =
  (* Same run as test/gen_golden/gen_golden.ml. *)
  lazy
    (let app = Option.get (Numa_apps.Registry.find "imatmult") in
     let config = Numa_machine.Config.ace ~n_cpus:4 () in
     let sys = System.create ~config () in
     app.App_sig.setup sys { App_sig.nthreads = 4; scale = 0.03; seed = 42L };
     audited sys (System.run sys))

let test_golden_report_json () =
  Alcotest.(check string) "imatmult ACE report JSON is byte-identical"
    (golden "report_imatmult_ace.json")
    (report_bytes (Lazy.force golden_report))

let test_golden_report_text () =
  Alcotest.(check string) "imatmult ACE report text is byte-identical"
    (golden "report_imatmult_ace.txt")
    (Format.asprintf "%a@." Report.pp (Lazy.force golden_report))

let test_golden_table3 () =
  let spec = { Runner.default_spec with Runner.scale = 0.05; n_cpus = 4; nthreads = 4 } in
  let apps = List.filter_map Numa_apps.Registry.find [ "imatmult"; "primes3" ] in
  let rows = Numa_metrics.Table3.run ~apps ~spec () in
  Alcotest.(check string) "small Table 3 is byte-identical"
    (golden "table3_small_ace.txt")
    (Numa_metrics.Table3.render rows ^ "\n" ^ Numa_metrics.Table3.render_comparison rows)

let suite =
  [
    Alcotest.test_case "reruns are bit-identical" `Quick test_reruns_identical;
    Alcotest.test_case "seed changes plytrace" `Quick test_seed_changes_plytrace;
    Alcotest.test_case "single-thread chunk invariance" `Quick
      test_single_thread_chunk_invariance;
    Alcotest.test_case "multi-thread chunk robustness" `Quick
      test_multithread_chunk_robustness;
    Alcotest.test_case "scale monotonicity" `Quick test_scale_monotonicity;
    Alcotest.test_case "rerun reports byte-identical" `Quick
      test_rerun_reports_byte_identical;
    Alcotest.test_case "parallel map = sequential map" `Quick
      test_parallel_map_matches_sequential;
    Alcotest.test_case "parallel map propagates exceptions" `Quick
      test_parallel_map_propagates_exceptions;
    Alcotest.test_case "parallel runner bit-identical" `Quick
      test_parallel_runner_bit_identical;
    Alcotest.test_case "golden: ACE report JSON frozen" `Quick test_golden_report_json;
    Alcotest.test_case "golden: ACE report text frozen" `Quick test_golden_report_text;
    Alcotest.test_case "golden: ACE Table 3 frozen" `Quick test_golden_table3;
  ]
