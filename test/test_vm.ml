(* Unit tests for the machine-independent VM layer, running over the real
   ACE pmap layer. *)

open Numa_machine
open Numa_vm

let small_config () = Config.ace ~n_cpus:4 ~local_pages_per_cpu:16 ~global_pages:32 ()

type env = {
  ops : Pmap_intf.ops;
  pool : Lpage_pool.t;
  task : Task.t;
  ctx : Fault.ctx;
  pmap_mgr : Numa_core.Pmap_manager.t;
}

let make_env ?(config = small_config ()) () =
  let policy = Numa_core.Policy.move_limit ~n_pages:config.Config.global_pages () in
  let pmap_mgr = Numa_core.Pmap_manager.create ~config ~policy () in
  let ops = Numa_core.Pmap_manager.ops pmap_mgr in
  let pool = Lpage_pool.create config ~ops in
  let task = Task.create ~ops ~id:0 ~name:"test" in
  let ctx =
    { Fault.ops; config; sink = Numa_core.Pmap_manager.sink pmap_mgr; pool; pageout = None; obs = None }
  in
  { ops; pool; task; ctx; pmap_mgr }

let data_attr name =
  Region_attr.v ~name ~kind:Region_attr.Data ~sharing:Region_attr.Declared_write_shared ()

let add_region env ~name ~pages =
  let obj = Vm_object.create ~id:0 ~name ~size_pages:pages in
  Vm_map.allocate env.task.Task.map ~npages:pages ~obj ~obj_offset:0
    ~max_prot:Prot.Read_write ~attr:(data_attr name) ()

(* --- lpage pool -------------------------------------------------------- *)

let test_pool_alloc_free () =
  let env = make_env () in
  Alcotest.(check int) "initial free" 32 (Lpage_pool.n_free env.pool);
  let p1 = Option.get (Lpage_pool.alloc env.pool) in
  let p2 = Option.get (Lpage_pool.alloc env.pool) in
  Alcotest.(check bool) "distinct pages" true (p1 <> p2);
  Alcotest.(check int) "2 allocated" 2 (Lpage_pool.n_allocated env.pool);
  Alcotest.(check bool) "is_allocated" true (Lpage_pool.is_allocated env.pool p1);
  Lpage_pool.free env.pool p1;
  Alcotest.(check bool) "freed" false (Lpage_pool.is_allocated env.pool p1);
  Alcotest.check_raises "double free" (Invalid_argument "Lpage_pool.free: double free")
    (fun () -> Lpage_pool.free env.pool p1)

let test_pool_exhaustion () =
  let env = make_env () in
  for _ = 1 to 32 do
    ignore (Option.get (Lpage_pool.alloc env.pool))
  done;
  Alcotest.(check bool) "exhausted" true (Lpage_pool.alloc env.pool = None)

let test_pool_reuse_completes_cleanup () =
  let env = make_env () in
  let p = Option.get (Lpage_pool.alloc env.pool) in
  Lpage_pool.free env.pool p;
  (* Reallocation must run pmap_free_page_sync without error. *)
  let p' = Option.get (Lpage_pool.alloc env.pool) in
  ignore p';
  Alcotest.(check int) "one allocated" 1 (Lpage_pool.n_allocated env.pool)

(* --- vm_object ----------------------------------------------------------- *)

let test_object_zero_fill_then_resident () =
  let env = make_env () in
  let obj = Vm_object.create ~id:1 ~name:"obj" ~size_pages:3 in
  Alcotest.(check bool) "empty initially" true (Vm_object.slot obj ~offset:1 = Vm_object.Empty);
  let l1 = Result.get_ok (Vm_object.lpage_for obj ~pool:env.pool ~ops:env.ops ~offset:1) in
  let l1' = Result.get_ok (Vm_object.lpage_for obj ~pool:env.pool ~ops:env.ops ~offset:1) in
  Alcotest.(check int) "stable lpage" l1 l1';
  Alcotest.(check int) "one pool page used" 1 (Lpage_pool.n_allocated env.pool)

let test_object_pageout_roundtrip () =
  let env = make_env () in
  let obj = Vm_object.create ~id:1 ~name:"obj" ~size_pages:1 in
  let lpage = Result.get_ok (Vm_object.lpage_for obj ~pool:env.pool ~ops:env.ops ~offset:0) in
  env.ops.Pmap_intf.install_page ~lpage ~content:1234;
  Vm_object.page_out obj ~pool:env.pool ~ops:env.ops ~offset:0;
  Alcotest.(check bool) "paged out" true
    (Vm_object.slot obj ~offset:0 = Vm_object.Paged_out 1234);
  Alcotest.(check int) "pool page returned" 0 (Lpage_pool.n_allocated env.pool);
  (* Page back in: content restored on a fresh logical page. *)
  let lpage' = Result.get_ok (Vm_object.lpage_for obj ~pool:env.pool ~ops:env.ops ~offset:0) in
  Alcotest.(check int) "content restored" 1234
    (env.ops.Pmap_intf.extract_content ~lpage:lpage')

let test_object_resident_pages () =
  let env = make_env () in
  let obj = Vm_object.create ~id:1 ~name:"obj" ~size_pages:4 in
  ignore (Result.get_ok (Vm_object.lpage_for obj ~pool:env.pool ~ops:env.ops ~offset:0));
  ignore (Result.get_ok (Vm_object.lpage_for obj ~pool:env.pool ~ops:env.ops ~offset:2));
  Alcotest.(check int) "two resident" 2 (List.length (Vm_object.resident_pages obj))

(* --- vm_map ----------------------------------------------------------------- *)

let test_map_alloc_and_lookup () =
  let env = make_env () in
  let r1 = add_region env ~name:"a" ~pages:4 in
  let r2 = add_region env ~name:"b" ~pages:2 in
  Alcotest.(check bool) "non-overlapping auto placement" true
    (r2.Vm_map.base_vpage >= r1.Vm_map.base_vpage + 4);
  (match Vm_map.region_at env.task.Task.map ~vpage:(r1.Vm_map.base_vpage + 3) with
  | Some r -> Alcotest.(check string) "found region a" "a" r.Vm_map.attr.Region_attr.name
  | None -> Alcotest.fail "region not found");
  Alcotest.(check bool) "gap below returns none" true
    (Vm_map.region_at env.task.Task.map ~vpage:(r2.Vm_map.base_vpage + 2) = None);
  Alcotest.(check int) "two regions listed" 2
    (List.length (Vm_map.regions env.task.Task.map))

let test_map_overlap_rejected () =
  let env = make_env () in
  let _r1 = add_region env ~name:"a" ~pages:4 in
  let obj = Vm_object.create ~id:9 ~name:"clash" ~size_pages:2 in
  Alcotest.check_raises "overlap" (Invalid_argument "Vm_map.allocate: overlapping region")
    (fun () ->
      ignore
        (Vm_map.allocate env.task.Task.map ~at:2 ~npages:2 ~obj ~obj_offset:0
           ~max_prot:Prot.Read_write ~attr:(data_attr "clash") ()))

let test_map_deallocate () =
  let env = make_env () in
  let r = add_region env ~name:"a" ~pages:2 in
  Vm_map.deallocate env.task.Task.map r;
  Alcotest.(check bool) "gone" true (Vm_map.region_at env.task.Task.map ~vpage:0 = None)

let test_map_offset_translation () =
  let env = make_env () in
  let obj = Vm_object.create ~id:3 ~name:"window" ~size_pages:10 in
  let r =
    Vm_map.allocate env.task.Task.map ~at:100 ~npages:4 ~obj ~obj_offset:5
      ~max_prot:Prot.Read_write ~attr:(data_attr "w") ()
  in
  Alcotest.(check int) "offset of base" 5 (Vm_map.obj_offset_of_vpage r ~vpage:100);
  Alcotest.(check int) "offset of last" 8 (Vm_map.obj_offset_of_vpage r ~vpage:103)

(* --- fault handler -------------------------------------------------------------- *)

let test_fault_resolves_and_maps () =
  let env = make_env () in
  let r = add_region env ~name:"a" ~pages:1 in
  let v = r.Vm_map.base_vpage in
  Alcotest.(check bool) "not resident before" true
    (env.ops.Pmap_intf.resident ~pmap:env.task.Task.pmap ~cpu:0 ~vpage:v = None);
  (match Fault.handle env.ctx env.task ~cpu:0 ~vpage:v ~access:Access.Store with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fault failed: %s" (Fault.error_to_string e));
  match env.ops.Pmap_intf.resident ~pmap:env.task.Task.pmap ~cpu:0 ~vpage:v with
  | Some (prot, where) ->
      Alcotest.(check bool) "writable" true (Prot.allows prot Access.Store);
      Alcotest.(check bool) "placed local (first touch)" true
        (where = Location.Local_here)
  | None -> Alcotest.fail "still not resident"

let test_fault_no_region () =
  let env = make_env () in
  match Fault.handle env.ctx env.task ~cpu:0 ~vpage:999 ~access:Access.Load with
  | Error Fault.No_region -> ()
  | Ok () | Error _ -> Alcotest.fail "expected No_region"

let test_fault_protection_violation () =
  let env = make_env () in
  let obj = Vm_object.create ~id:4 ~name:"code" ~size_pages:1 in
  let attr =
    Region_attr.v ~name:"code" ~kind:Region_attr.Code
      ~sharing:Region_attr.Declared_read_shared ()
  in
  let r =
    Vm_map.allocate env.task.Task.map ~npages:1 ~obj ~obj_offset:0
      ~max_prot:Prot.Read_only ~attr ()
  in
  (match Fault.handle env.ctx env.task ~cpu:0 ~vpage:r.Vm_map.base_vpage ~access:Access.Store with
  | Error Fault.Protection_violation -> ()
  | Ok () | Error _ -> Alcotest.fail "expected Protection_violation");
  (* Reads are fine. *)
  match Fault.handle env.ctx env.task ~cpu:0 ~vpage:r.Vm_map.base_vpage ~access:Access.Load with
  | Ok () -> ()
  | Error e -> Alcotest.failf "read fault failed: %s" (Fault.error_to_string e)

let test_fault_charges_trap_cost () =
  let env = make_env () in
  let r = add_region env ~name:"a" ~pages:1 in
  ignore (Fault.handle env.ctx env.task ~cpu:2 ~vpage:r.Vm_map.base_vpage ~access:Access.Load);
  let charged = Cost_sink.pending env.ctx.Fault.sink ~cpu:2 in
  Alcotest.(check bool) "at least the trap cost" true
    (charged >= Cost.fault_trap_ns env.ctx.Fault.config)

let test_fault_out_of_memory () =
  let config = Config.ace ~n_cpus:2 ~local_pages_per_cpu:8 ~global_pages:2 () in
  let env = make_env ~config () in
  let r = add_region env ~name:"big" ~pages:3 in
  let v = r.Vm_map.base_vpage in
  ignore (Fault.handle env.ctx env.task ~cpu:0 ~vpage:v ~access:Access.Store);
  ignore (Fault.handle env.ctx env.task ~cpu:0 ~vpage:(v + 1) ~access:Access.Store);
  match Fault.handle env.ctx env.task ~cpu:0 ~vpage:(v + 2) ~access:Access.Store with
  | Error Fault.Out_of_memory -> ()
  | Ok () | Error _ -> Alcotest.fail "expected Out_of_memory"

(* --- task ------------------------------------------------------------------------ *)

let test_task_destroy_drops_mappings () =
  let env = make_env () in
  let r = add_region env ~name:"a" ~pages:1 in
  ignore (Fault.handle env.ctx env.task ~cpu:0 ~vpage:r.Vm_map.base_vpage ~access:Access.Load);
  Alcotest.(check bool) "resident" true
    (env.ops.Pmap_intf.resident ~pmap:env.task.Task.pmap ~cpu:0 ~vpage:r.Vm_map.base_vpage
    <> None);
  Task.destroy ~ops:env.ops env.task;
  Alcotest.(check int) "mmu empty" 0
    (Mmu.n_mappings (Numa_core.Pmap_manager.mmu env.pmap_mgr))

let suite =
  [
    Alcotest.test_case "pool alloc/free" `Quick test_pool_alloc_free;
    Alcotest.test_case "pool exhaustion" `Quick test_pool_exhaustion;
    Alcotest.test_case "pool reuse after free" `Quick test_pool_reuse_completes_cleanup;
    Alcotest.test_case "object zero-fill residency" `Quick test_object_zero_fill_then_resident;
    Alcotest.test_case "object pageout round trip" `Quick test_object_pageout_roundtrip;
    Alcotest.test_case "object resident pages" `Quick test_object_resident_pages;
    Alcotest.test_case "map alloc and lookup" `Quick test_map_alloc_and_lookup;
    Alcotest.test_case "map overlap rejected" `Quick test_map_overlap_rejected;
    Alcotest.test_case "map deallocate" `Quick test_map_deallocate;
    Alcotest.test_case "map offset translation" `Quick test_map_offset_translation;
    Alcotest.test_case "fault resolves and maps" `Quick test_fault_resolves_and_maps;
    Alcotest.test_case "fault on unmapped address" `Quick test_fault_no_region;
    Alcotest.test_case "fault protection violation" `Quick test_fault_protection_violation;
    Alcotest.test_case "fault charges trap cost" `Quick test_fault_charges_trap_cost;
    Alcotest.test_case "fault out of memory" `Quick test_fault_out_of_memory;
    Alcotest.test_case "task destroy drops mappings" `Quick test_task_destroy_drops_mappings;
  ]
