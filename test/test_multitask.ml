(* Multi-task support: separate address spaces, shared memory objects
   (Mach named memory), and cross-task NUMA behaviour. *)

open Numa_machine
module System = Numa_system.System
module Report = Numa_system.Report
module Api = Numa_sim.Api
module Region_attr = Numa_vm.Region_attr
module Manager = Numa_core.Numa_manager

let small_config () = Config.ace ~n_cpus:4 ~local_pages_per_cpu:64 ~global_pages:256 ()

let test_tasks_have_separate_address_spaces () =
  let sys = System.create ~config:(small_config ()) () in
  let other = System.create_task sys ~name:"other" in
  let a =
    System.alloc_region sys ~name:"a" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_private ~pages:1 ()
  in
  let b =
    System.alloc_region sys ~task:other ~name:"b" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_private ~pages:1 ()
  in
  (* Both maps start at address 0: same vpage, different regions. *)
  Alcotest.(check int) "overlapping virtual addresses" a.System.base_vpage
    b.System.base_vpage;
  let seen_a = ref (-1) and seen_b = ref (-1) in
  ignore
    (System.spawn sys ~cpu:0 ~name:"ta" (fun ~stack_vpage:_ ->
         Api.write ~value:11 a.System.base_vpage;
         seen_a := Api.read_value a.System.base_vpage));
  ignore
    (System.spawn sys ~cpu:1 ~task:other ~name:"tb" (fun ~stack_vpage:_ ->
         Api.write ~value:22 b.System.base_vpage;
         seen_b := Api.read_value b.System.base_vpage));
  ignore (System.run sys);
  (* Isolation: each task saw only its own value. *)
  Alcotest.(check int) "task A value" 11 !seen_a;
  Alcotest.(check int) "task B value" 22 !seen_b;
  (* Distinct logical pages back the same virtual address. *)
  let la = Option.get (System.lpage_of sys ~vpage:a.System.base_vpage ()) in
  let lb = Option.get (System.lpage_of sys ~task:other ~vpage:b.System.base_vpage ()) in
  Alcotest.(check bool) "distinct backing pages" true (la <> lb);
  match System.check_invariants sys with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariants: %s" msg

let test_shared_object_across_tasks () =
  let sys = System.create ~config:(small_config ()) () in
  let other = System.create_task sys ~name:"other" in
  let shared =
    System.alloc_region sys ~name:"shm" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_write_shared ~pages:1 ()
  in
  let view = System.map_shared sys ~into:other shared in
  (* Same memory object: one logical page once both touch it. *)
  let seen = ref (-1) in
  (* No cross-task barrier: stagger with compute so the write lands first. *)
  ignore
    (System.spawn sys ~cpu:0 ~name:"producer" (fun ~stack_vpage:_ ->
         Api.write ~value:4321 shared.System.base_vpage));
  ignore
    (System.spawn sys ~cpu:1 ~task:other ~name:"consumer" (fun ~stack_vpage:_ ->
         Api.compute 50_000_000. (* well past the producer's write *);
         seen := Api.read_value view.System.base_vpage));
  ignore (System.run sys);
  Alcotest.(check int) "value crosses the task boundary" 4321 !seen;
  let lp = Option.get (System.lpage_of sys ~vpage:shared.System.base_vpage ()) in
  let lv = Option.get (System.lpage_of sys ~task:other ~vpage:view.System.base_vpage ()) in
  Alcotest.(check int) "one logical page, two mappings" lp lv;
  match System.check_invariants sys with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariants: %s" msg

let test_cross_task_ping_pong_pins () =
  (* Write sharing across tasks drives the same protocol as across
     threads: the shared page must migrate and pin. *)
  let sys =
    System.create ~policy:(System.Move_limit { threshold = 1 }) ~config:(small_config ())
      ()
  in
  let other = System.create_task sys ~name:"other" in
  let shared =
    System.alloc_region sys ~name:"shm" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_write_shared ~pages:1 ()
  in
  let view = System.map_shared sys ~into:other shared in
  (* Alternate writes, staggered in time (no cross-task barriers). *)
  ignore
    (System.spawn sys ~cpu:0 ~name:"a" (fun ~stack_vpage:_ ->
         for _round = 1 to 6 do
           Api.write shared.System.base_vpage;
           Api.compute 10_000_000.
         done));
  ignore
    (System.spawn sys ~cpu:1 ~task:other ~name:"b" (fun ~stack_vpage:_ ->
         Api.compute 5_000_000.;
         for _round = 1 to 6 do
           Api.write view.System.base_vpage;
           Api.compute 10_000_000.
         done));
  let report = System.run sys in
  let lp = Option.get (System.lpage_of sys ~vpage:shared.System.base_vpage ()) in
  (match Manager.state_of (System.numa_manager sys) ~lpage:lp with
  | Manager.Global_writable -> ()
  | st -> Alcotest.failf "expected pinned shared page, got %a" Manager.pp_state st);
  Alcotest.(check bool) "moves were counted across tasks" true
    (report.Report.numa_moves >= 2);
  match System.check_invariants sys with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariants: %s" msg

let suite =
  [
    Alcotest.test_case "separate address spaces" `Quick
      test_tasks_have_separate_address_spaces;
    Alcotest.test_case "shared object across tasks" `Quick test_shared_object_across_tasks;
    Alcotest.test_case "cross-task ping-pong pins" `Quick test_cross_task_ping_pong_pins;
  ]
