(* Tests for the N-node distance-matrix topology layer: the Topo module
   itself, its validation, the built-in machines, the matrix-indexed cost
   functions (including the remote timings the two-level model never
   exercised), and whole-system runs on non-ACE machines. *)

open Numa_machine
module System = Numa_system.System
module Report = Numa_system.Report
module App_sig = Numa_apps.App_sig

let qcheck t = QCheck_alcotest.to_alcotest t

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- the derived two-level topology --------------------------------------- *)

let test_derived_ace_matches_scalars () =
  let c = Config.ace ~n_cpus:4 () in
  let topo = Config.topology c in
  Alcotest.(check int) "5 nodes" 5 (Topo.n_nodes topo);
  Alcotest.(check int) "4 cpu nodes" 4 (Topo.cpu_nodes topo);
  Alcotest.(check (option int)) "board is node 4" (Some 4) (Topo.mem_node topo);
  (* Every matrix entry is exactly one of the six scalars. *)
  Alcotest.(check (float 0.)) "local fetch" c.Config.local_fetch_ns
    (Topo.fetch_ns topo ~from:2 ~at:2);
  Alcotest.(check (float 0.)) "local store" c.Config.local_store_ns
    (Topo.store_ns topo ~from:2 ~at:2);
  Alcotest.(check (float 0.)) "global fetch" c.Config.global_fetch_ns
    (Topo.fetch_ns topo ~from:2 ~at:4);
  Alcotest.(check (float 0.)) "global store" c.Config.global_store_ns
    (Topo.store_ns topo ~from:2 ~at:4);
  Alcotest.(check (float 0.)) "remote fetch" c.Config.remote_fetch_ns
    (Topo.fetch_ns topo ~from:2 ~at:3);
  Alcotest.(check (float 0.)) "remote store" c.Config.remote_store_ns
    (Topo.store_ns topo ~from:2 ~at:3);
  Alcotest.(check int) "pool size" c.Config.local_pages_per_cpu
    (Topo.pool_pages topo ~node:1)

let test_remote_reference_costs () =
  (* The measured ACE remote timings (section 2.2): 1.8 us fetch, 1.7 us
     store — dearer than the global board on this machine. *)
  let c = Config.ace () in
  Alcotest.(check (float 1e-9)) "remote fetch scalar" 1800. c.Config.remote_fetch_ns;
  Alcotest.(check (float 1e-9)) "remote store scalar" 1700. c.Config.remote_store_ns;
  Alcotest.(check (float 1e-9)) "class cost, load" 1800.
    (Cost.reference_ns c ~access:Access.Load ~where:Location.Remote_local);
  Alcotest.(check (float 1e-9)) "class cost, store" 1700.
    (Cost.reference_ns c ~access:Access.Store ~where:Location.Remote_local);
  Alcotest.(check (float 1e-9)) "remote dearer than global (fetch)" 300.
    (c.Config.remote_fetch_ns -. c.Config.global_fetch_ns);
  (* And through the matrix: node 0 referencing node 1's memory. *)
  let topo = Config.topology c in
  Alcotest.(check (float 1e-9)) "matrix remote load" 1800.
    (Cost.node_reference_ns ~topo ~access:Access.Load ~cpu:0 ~node:1);
  Alcotest.(check (float 1e-9)) "matrix remote store" 1700.
    (Cost.node_reference_ns ~topo ~access:Access.Store ~cpu:0 ~node:1)

let test_butterfly_like_derived_topology () =
  (* The scalar retiming of section 4.4 seen through the matrix: the
     shared board's row costs exactly the remote timings. *)
  let c = Config.butterfly_like ~n_cpus:4 () in
  let topo = Config.topology c in
  let board = Option.get (Topo.mem_node topo) in
  Alcotest.(check (float 1e-9)) "board priced as remote (fetch)"
    c.Config.remote_fetch_ns
    (Topo.fetch_ns topo ~from:0 ~at:board);
  Alcotest.(check (float 1e-9)) "board priced as remote (store)"
    c.Config.remote_store_ns
    (Topo.store_ns topo ~from:0 ~at:board)

(* --- shared-level homes and classification -------------------------------- *)

let test_global_home () =
  let ace = Config.topology (Config.ace ~n_cpus:4 ()) in
  Alcotest.(check int) "ace: board holds every shared page" 4
    (Topo.global_home ace ~lpage:17);
  let bf = Config.topology (Config.butterfly ~n_cpus:4 ()) in
  Alcotest.(check (option int)) "butterfly has no board" None (Topo.mem_node bf);
  Alcotest.(check int) "stripe 0" 0 (Topo.global_home bf ~lpage:0);
  Alcotest.(check int) "stripe 9 -> node 1" 1 (Topo.global_home bf ~lpage:9);
  Alcotest.(check int) "stripe wraps" 3 (Topo.global_home bf ~lpage:7)

let test_classify_places () =
  let topo = Config.topology (Config.butterfly ~n_cpus:4 ()) in
  Alcotest.(check bool) "shared is In_global regardless of stripe" true
    (Topo.classify topo ~cpu:1 (Topo.Shared 1) = Location.In_global);
  Alcotest.(check bool) "own node" true
    (Topo.classify topo ~cpu:2 (Topo.Node 2) = Location.Local_here);
  Alcotest.(check bool) "other node" true
    (Topo.classify topo ~cpu:2 (Topo.Node 0) = Location.Remote_local)

let test_butterfly_stripe_pricing () =
  (* The point of the true butterfly: a shared page is local-speed when
     its stripe home is the referencing node. *)
  let c = Config.butterfly ~n_cpus:4 () in
  let topo = Config.topology c in
  Alcotest.(check (float 1e-9)) "stripe home hit = local speed"
    c.Config.local_fetch_ns
    (Cost.place_reference_ns ~topo ~access:Access.Load ~cpu:1 ~place:(Topo.Shared 5));
  Alcotest.(check (float 1e-9)) "stripe miss = remote speed"
    c.Config.remote_fetch_ns
    (Cost.place_reference_ns ~topo ~access:Access.Load ~cpu:0 ~place:(Topo.Shared 5))

let test_multi_socket_near_far () =
  let c = Config.multi_socket () in
  let topo = Config.topology c in
  let near = Topo.fetch_ns topo ~from:0 ~at:1 in
  let far = Topo.fetch_ns topo ~from:0 ~at:2 in
  Alcotest.(check bool) "within-socket beats cross-socket" true (near < far);
  Alcotest.(check (float 1e-9)) "cross-socket = ACE remote" 1800. far;
  (* Page copy from the board into a node prices each word at
     (fetch from board) + (store at home). *)
  let words = float_of_int c.Config.page_size_words in
  let board = Option.get (Topo.mem_node topo) in
  Alcotest.(check (float 1e-6)) "page pull-in cost"
    (words
    *. (Topo.fetch_ns topo ~from:0 ~at:board +. Topo.store_ns topo ~from:0 ~at:0))
    (Cost.place_page_copy_ns c ~topo ~cpu:0 ~src:(Topo.Shared 3) ~dst:(Topo.Node 0))

(* --- builtin registry ------------------------------------------------------ *)

let test_builtin_registry () =
  List.iter
    (fun name ->
      match Config.of_topology_name ~n_cpus:4 name with
      | None -> Alcotest.failf "builtin %s missing" name
      | Some c -> (
          Alcotest.(check int) (name ^ " n_cpus honoured") 4 c.Config.n_cpus;
          match Config.validate c with
          | Ok _ -> ()
          | Error msg -> Alcotest.failf "builtin %s invalid: %s" name msg))
    Config.builtin_topologies;
  Alcotest.(check bool) "unknown name rejected" true
    (Config.of_topology_name "hypercube" = None)

(* --- validation ------------------------------------------------------------ *)

let valid_topo () = Config.topology (Config.multi_socket ())

let rejects what mutate =
  let t = mutate (valid_topo ()) in
  match Topo.validate t with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "validation accepted %s" what

let test_validate_rejections () =
  rejects "zero cpu nodes" (fun t -> { t with Topo.cpu_nodes = 0 });
  rejects "ragged fetch matrix" (fun t ->
      let m = Array.map Array.copy t.Topo.fetch_ns in
      m.(1) <- Array.sub m.(1) 0 2;
      { t with Topo.fetch_ns = m });
  rejects "short store matrix" (fun t ->
      { t with Topo.store_ns = Array.sub t.Topo.store_ns 0 2 });
  rejects "zero latency" (fun t ->
      let m = Array.map Array.copy t.Topo.fetch_ns in
      m.(0).(0) <- 0.;
      { t with Topo.fetch_ns = m });
  rejects "negative store latency" (fun t ->
      let m = Array.map Array.copy t.Topo.store_ns in
      m.(2).(1) <- -5.;
      { t with Topo.store_ns = m });
  rejects "negative pool" (fun t ->
      let p = Array.copy t.Topo.pool_pages in
      p.(0) <- -1;
      { t with Topo.pool_pages = p });
  rejects "pool array wrong length" (fun t ->
      { t with Topo.pool_pages = Array.sub t.Topo.pool_pages 0 1 });
  rejects "mem_node out of range" (fun t -> { t with Topo.mem_node = Some 99 });
  rejects "mem_node is a cpu node" (fun t -> { t with Topo.mem_node = Some 0 });
  rejects "mem_node missing but extra node present" (fun t ->
      { t with Topo.mem_node = None });
  rejects "ragged link matrix" (fun t ->
      let n = Array.length t.Topo.fetch_ns in
      let m = Array.make_matrix n n 0.02 in
      m.(0) <- Array.sub m.(0) 0 1;
      { t with Topo.link_words_per_ns = Some m });
  rejects "negative link bandwidth" (fun t ->
      let n = Array.length t.Topo.fetch_ns in
      let m = Array.make_matrix n n 0.02 in
      m.(1).(2) <- -0.5;
      { t with Topo.link_words_per_ns = Some m })

let test_config_topology_agreement () =
  (* The config-level check: n_cpus must agree with the topology. *)
  let c = Config.butterfly ~n_cpus:4 () in
  Alcotest.(check bool) "consistent config valid" true
    (Result.is_ok (Config.validate c));
  let bad = { c with Config.n_cpus = 5 } in
  Alcotest.(check bool) "cpu-count mismatch rejected" true
    (Result.is_error (Config.validate bad))

(* One random single-field corruption per run: whichever field is hit,
   validation must reject the result. *)
let prop_validate_rejects_corruption =
  QCheck.Test.make ~name:"topology validation rejects every corrupted field"
    ~count:200
    QCheck.(pair (int_bound 6) (int_bound 1000))
    (fun (which, salt) ->
      let t = valid_topo () in
      let n = Array.length t.Topo.fetch_ns in
      let i = salt mod n and j = salt * 7 mod n in
      let corrupted =
        match which with
        | 0 -> { t with Topo.cpu_nodes = -(1 + (salt mod 3)) }
        | 1 ->
            let m = Array.map Array.copy t.Topo.fetch_ns in
            m.(i).(j) <- -.float_of_int (1 + salt);
            { t with Topo.fetch_ns = m }
        | 2 ->
            let m = Array.map Array.copy t.Topo.store_ns in
            m.(i).(j) <- 0.;
            { t with Topo.store_ns = m }
        | 3 ->
            let p = Array.copy t.Topo.pool_pages in
            p.(salt mod Array.length p) <- -(1 + salt);
            { t with Topo.pool_pages = p }
        | 4 -> { t with Topo.mem_node = Some (n + (salt mod 5)) }
        | 5 ->
            let m = Array.map Array.copy t.Topo.fetch_ns in
            m.(i) <- Array.append m.(i) [| 1. |];
            { t with Topo.fetch_ns = m }
        | _ ->
            let m = Array.make_matrix n n 0.01 in
            m.(i).(j) <- -1.;
            { t with Topo.link_words_per_ns = Some m }
      in
      Result.is_error (Topo.validate corrupted))

(* --- whole-system runs on non-ACE machines --------------------------------- *)

let run_on config =
  let app = Option.get (Numa_apps.Registry.find "imatmult") in
  let sys = System.create ~config () in
  app.App_sig.setup sys { App_sig.nthreads = 4; scale = 0.02; seed = 42L };
  System.run sys

let test_system_runs_on_builtins () =
  List.iter
    (fun name ->
      let config = Option.get (Config.of_topology_name ~n_cpus:4 name) in
      let r = run_on config in
      Alcotest.(check bool)
        (name ^ " does work") true
        (Report.total_refs r.Report.refs_all > 0 && r.Report.total_user_ns > 0.);
      Alcotest.(check bool)
        (name ^ " places pages") true
        (r.Report.alpha_counted > 0.5))
    Config.builtin_topologies

let test_system_deterministic_on_butterfly () =
  let fingerprint (r : Report.t) =
    (r.Report.total_user_ns, Report.total_refs r.Report.refs_all, r.Report.numa_moves)
  in
  let a = fingerprint (run_on (Config.butterfly ~n_cpus:4 ())) in
  let b = fingerprint (run_on (Config.butterfly ~n_cpus:4 ())) in
  Alcotest.(check bool) "reruns identical" true (a = b)

let test_frame_pools_per_node () =
  let config = Config.multi_socket ~local_pages_per_cpu:8 () in
  let ft = Frame_table.create config in
  for node = 0 to config.Config.n_cpus - 1 do
    for _ = 1 to 8 do
      match Frame_table.alloc_local ft ~node with
      | Some _ -> ()
      | None -> Alcotest.failf "node %d pool exhausted early" node
    done;
    Alcotest.(check bool)
      (Printf.sprintf "node %d capacity is per-node" node)
      true
      (Frame_table.alloc_local ft ~node = None)
  done

(* --- rendering ------------------------------------------------------------- *)

let test_render_n_node () =
  let bf = Topology.render (Config.butterfly ~n_cpus:4 ()) in
  Alcotest.(check bool) "butterfly: striped note" true (contains bf "striped");
  Alcotest.(check bool) "butterfly: latency matrix" true
    (contains bf "fetch latency matrix");
  let ms = Topology.render (Config.multi_socket ()) in
  Alcotest.(check bool) "multi-socket: board node" true
    (contains ms "shared memory board");
  Alcotest.(check bool) "multi-socket: near latency in matrix" true
    (contains ms "1.10");
  (* The classic drawing must still be the classic drawing. *)
  let ace = Topology.render (Config.ace ()) in
  Alcotest.(check bool) "ace unchanged: IPC bus" true (contains ace "IPC");
  Alcotest.(check bool) "ace has no matrix" false
    (contains ace "fetch latency matrix")

let suite =
  [
    Alcotest.test_case "derived ACE topology = scalars" `Quick
      test_derived_ace_matches_scalars;
    Alcotest.test_case "remote reference costs" `Quick test_remote_reference_costs;
    Alcotest.test_case "butterfly-like derived topology" `Quick
      test_butterfly_like_derived_topology;
    Alcotest.test_case "global home / striping" `Quick test_global_home;
    Alcotest.test_case "place classification" `Quick test_classify_places;
    Alcotest.test_case "butterfly stripe pricing" `Quick test_butterfly_stripe_pricing;
    Alcotest.test_case "multi-socket near/far" `Quick test_multi_socket_near_far;
    Alcotest.test_case "builtin registry" `Quick test_builtin_registry;
    Alcotest.test_case "validation rejections" `Quick test_validate_rejections;
    Alcotest.test_case "config/topology agreement" `Quick test_config_topology_agreement;
    qcheck prop_validate_rejects_corruption;
    Alcotest.test_case "system runs on every builtin" `Quick test_system_runs_on_builtins;
    Alcotest.test_case "butterfly runs deterministic" `Quick
      test_system_deterministic_on_butterfly;
    Alcotest.test_case "frame pools per node" `Quick test_frame_pools_per_node;
    Alcotest.test_case "N-node rendering" `Quick test_render_n_node;
  ]
