(* Unit tests for the NUMA core: policies, the protocol executor, and the
   pmap manager, driven directly (no engine). *)

open Numa_machine
open Numa_core

let small_config ?(n_cpus = 4) ?(local_pages = 16) () =
  Config.ace ~n_cpus ~local_pages_per_cpu:local_pages ~global_pages:32 ()

type env = {
  mgr : Pmap_manager.t;
  ops : Numa_vm.Pmap_intf.ops;
  pmap : int;
  config : Config.t;
}

let make_env ?policy ?(config = small_config ()) () =
  let policy =
    match policy with
    | Some p -> p
    | None -> Policy.move_limit ~n_pages:config.Config.global_pages ()
  in
  let mgr = Pmap_manager.create ~config ~policy () in
  let ops = Pmap_manager.ops mgr in
  let pmap = ops.Numa_vm.Pmap_intf.pmap_create ~name:"t" in
  { mgr; ops; pmap; config }

(* Shorthand: fault-style entry for (cpu, vpage, lpage). vpage = lpage by
   convention in these tests. *)
let enter env ~cpu ~lpage ~(access : Access.t) =
  env.ops.Numa_vm.Pmap_intf.enter ~pmap:env.pmap ~cpu ~vpage:lpage ~lpage
    ~min_prot:(Prot.of_access access) ~max_prot:Prot.Read_write

let state env ~lpage = Numa_manager.state_of (Pmap_manager.manager env.mgr) ~lpage

let check_inv env =
  match Numa_manager.check_invariants (Pmap_manager.manager env.mgr) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariant: %s" msg

let check_state env ~lpage expected =
  let got = state env ~lpage in
  if got <> expected then
    Alcotest.failf "expected %a, got %a" Numa_manager.pp_state expected
      Numa_manager.pp_state got

(* --- policy units ------------------------------------------------------ *)

let test_policy_move_limit () =
  let p = Policy.move_limit ~threshold:2 ~n_pages:8 () in
  let decide () = p.Policy.decide ~lpage:0 ~cpu:0 ~access:Access.Store in
  Alcotest.(check bool) "local before moves" true (decide () = Protocol.Place_local);
  p.Policy.note (Policy.Page_moved { lpage = 0 });
  p.Policy.note (Policy.Page_moved { lpage = 0 });
  Alcotest.(check bool) "local at threshold" true (decide () = Protocol.Place_local);
  p.Policy.note (Policy.Page_moved { lpage = 0 });
  Alcotest.(check bool) "global past threshold" true (decide () = Protocol.Place_global);
  Alcotest.(check int) "one pin" 1 (p.Policy.n_pinned ());
  (* Other pages are unaffected. *)
  Alcotest.(check bool) "page 1 still local" true
    (p.Policy.decide ~lpage:1 ~cpu:0 ~access:Access.Store = Protocol.Place_local);
  (* Freeing resets history (footnote 4). *)
  p.Policy.note (Policy.Page_freed { lpage = 0 });
  Alcotest.(check bool) "local again after free" true (decide () = Protocol.Place_local);
  Alcotest.(check int) "unpinned" 0 (p.Policy.n_pinned ())

let test_policy_all_global_never_pin () =
  let g = Policy.all_global () and l = Policy.never_pin () in
  for lpage = 0 to 3 do
    Alcotest.(check bool) "all-global" true
      (g.Policy.decide ~lpage ~cpu:1 ~access:Access.Load = Protocol.Place_global);
    Alcotest.(check bool) "never-pin" true
      (l.Policy.decide ~lpage ~cpu:1 ~access:Access.Store = Protocol.Place_local)
  done;
  (* Move notifications never change their answers. *)
  l.Policy.note (Policy.Page_moved { lpage = 0 });
  Alcotest.(check bool) "never-pin ignores moves" true
    (l.Policy.decide ~lpage:0 ~cpu:0 ~access:Access.Store = Protocol.Place_local)

let test_policy_random_sticky () =
  let prng = Numa_util.Prng.create ~seed:3L in
  let p = Policy.random ~prng ~p_global:0.5 ~n_pages:64 in
  for lpage = 0 to 63 do
    let first = p.Policy.decide ~lpage ~cpu:0 ~access:Access.Load in
    for _ = 1 to 5 do
      Alcotest.(check bool) "sticky" true
        (p.Policy.decide ~lpage ~cpu:0 ~access:Access.Load = first)
    done
  done;
  let pins = p.Policy.n_pinned () in
  Alcotest.(check bool) "roughly half global" true (pins > 10 && pins < 54)

let test_policy_reconsider_expires () =
  let now = ref 0. in
  let p =
    Policy.reconsider ~threshold:1 ~window_ns:1000. ~now:(fun () -> !now) ~n_pages:4 ()
  in
  p.Policy.note (Policy.Page_moved { lpage = 0 });
  p.Policy.note (Policy.Page_moved { lpage = 0 });
  Alcotest.(check bool) "pinned" true
    (p.Policy.decide ~lpage:0 ~cpu:0 ~access:Access.Store = Protocol.Place_global);
  now := 500.;
  Alcotest.(check bool) "still pinned inside window" true
    (p.Policy.decide ~lpage:0 ~cpu:0 ~access:Access.Store = Protocol.Place_global);
  now := 2000.;
  Alcotest.(check bool) "unpinned after window" true
    (p.Policy.decide ~lpage:0 ~cpu:0 ~access:Access.Store = Protocol.Place_local);
  Alcotest.(check int) "no longer pinned" 0 (p.Policy.n_pinned ())

(* Regression (footnote 4): random's sticky assignment must be forgotten
   when the page is freed, like move_limit forgets its move count. *)
let test_policy_random_forgets_on_free () =
  let prng = Numa_util.Prng.create ~seed:5L in
  let p = Policy.random ~prng ~p_global:1.0 ~n_pages:4 in
  Alcotest.(check bool) "assigned global" true
    (p.Policy.decide ~lpage:0 ~cpu:0 ~access:Access.Load = Protocol.Place_global);
  Alcotest.(check int) "counted as pinned" 1 (p.Policy.n_pinned ());
  p.Policy.note (Policy.Page_freed { lpage = 0 });
  Alcotest.(check int) "assignment forgotten on free" 0 (p.Policy.n_pinned ());
  Alcotest.(check bool) "recycled page gets a fresh flip" true
    (p.Policy.decide ~lpage:0 ~cpu:0 ~access:Access.Load = Protocol.Place_global);
  Alcotest.(check int) "re-counted by the fresh flip" 1 (p.Policy.n_pinned ())

let test_policy_decay_unpins () =
  let now = ref 0. in
  let p =
    Policy.decay ~threshold:1. ~half_life_ns:1000. ~now:(fun () -> !now) ~n_pages:4 ()
  in
  p.Policy.note (Policy.Page_moved { lpage = 0 });
  p.Policy.note (Policy.Page_moved { lpage = 0 });
  Alcotest.(check bool) "pinned while the score is hot" true
    (p.Policy.decide ~lpage:0 ~cpu:0 ~access:Access.Store = Protocol.Place_global);
  Alcotest.(check int) "one pin" 1 (p.Policy.n_pinned ());
  Alcotest.(check (list int)) "nothing expired while hot" [] (p.Policy.expired_pins ());
  (* Three half-lives: the score leaks from 2 to 0.25, under the threshold. *)
  now := 3000.;
  Alcotest.(check (list int)) "scan reports the cooled pin" [ 0 ] (p.Policy.expired_pins ());
  Alcotest.(check bool) "fresh fault decides LOCAL again" true
    (p.Policy.decide ~lpage:0 ~cpu:0 ~access:Access.Store = Protocol.Place_local);
  Alcotest.(check int) "unpinned" 0 (p.Policy.n_pinned ());
  (* A free zeroes the score outright, hot or not. *)
  p.Policy.note (Policy.Page_moved { lpage = 1 });
  p.Policy.note (Policy.Page_moved { lpage = 1 });
  p.Policy.note (Policy.Page_freed { lpage = 1 });
  Alcotest.(check bool) "freed page starts cold" true
    (p.Policy.decide ~lpage:1 ~cpu:0 ~access:Access.Store = Protocol.Place_local)

let test_policy_bandwidth_aware_stripe () =
  (* On a striped machine the shared level of lpage lives on node
     [lpage mod cpu_nodes]: the policy should serve near stripes globally
     and cache far ones locally. *)
  let topo = Config.topology (Config.butterfly ~n_cpus:4 ()) in
  let pressure = ref (fun ~node:_ -> 0.) in
  let p =
    Policy.bandwidth_aware ~topo ~pressure:(fun ~node -> !pressure ~node) ~n_pages:16 ()
  in
  Alcotest.(check bool) "own stripe served globally" true
    (p.Policy.decide ~lpage:5 ~cpu:1 ~access:Access.Load = Protocol.Place_global);
  Alcotest.(check bool) "far stripe cached locally" true
    (p.Policy.decide ~lpage:6 ~cpu:1 ~access:Access.Load = Protocol.Place_local);
  Alcotest.(check int) "cheap global answers are not pins" 0 (p.Policy.n_pinned ());
  (* A full local pool flips the comparison: LOCAL would only fall back. *)
  pressure := (fun ~node:_ -> 1.0);
  Alcotest.(check bool) "full pool pushes far stripes global too" true
    (p.Policy.decide ~lpage:6 ~cpu:1 ~access:Access.Load = Protocol.Place_global);
  pressure := (fun ~node:_ -> 0.);
  (* The move-limit backbone still pins ping-ponged pages. *)
  for _ = 1 to 5 do
    p.Policy.note (Policy.Page_moved { lpage = 9 })
  done;
  Alcotest.(check bool) "past threshold pins" true
    (p.Policy.decide ~lpage:9 ~cpu:1 ~access:Access.Store = Protocol.Place_global);
  Alcotest.(check int) "pinned" 1 (p.Policy.n_pinned ())

let test_policy_bandwidth_aware_slow_link () =
  (* Two nodes where each remote fetch is marginally CHEAPER than a local
     one (synthetic, so GLOBAL starts ahead by the same margin in both
     directions) and only the directed link bandwidths differ. Whatever
     separates the two placements is then the link surcharge alone. *)
  let m v = Array.make_matrix 2 2 v in
  let fetch = m 100. in
  fetch.(0).(1) <- 99.;
  fetch.(1).(0) <- 99.;
  let links = m 0. in
  links.(0).(1) <- 0.001 (* 1000 ns of queueing per word toward node 1 *);
  links.(1).(0) <- 10. (* a tenth of a nanosecond toward node 0 *);
  let topo =
    {
      Topo.name = "two-node";
      cpu_nodes = 2;
      mem_node = None;
      pool_pages = [| 8; 8 |];
      fetch_ns = fetch;
      store_ns = m 100.;
      link_words_per_ns = Some links;
    }
  in
  (match Topo.validate topo with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "test topology invalid: %s" e);
  let p = Policy.bandwidth_aware ~topo ~pressure:(fun ~node:_ -> 0.) ~n_pages:4 () in
  Alcotest.(check bool) "slow link to the stripe home forces LOCAL" true
    (p.Policy.decide ~lpage:1 ~cpu:0 ~access:Access.Load = Protocol.Place_local);
  Alcotest.(check bool) "fast link leaves GLOBAL competitive" true
    (p.Policy.decide ~lpage:0 ~cpu:1 ~access:Access.Load = Protocol.Place_global)

let test_policy_migrate_threads_hints () =
  let topo = Config.topology (Config.butterfly ~n_cpus:4 ()) in
  let p = Policy.migrate_threads ~threshold:1 ~topo ~n_pages:16 () in
  Alcotest.(check (list (pair int int))) "no hints initially" [] (p.Policy.migrate_hints ());
  p.Policy.note (Policy.Page_moved { lpage = 2 });
  p.Policy.note (Policy.Page_moved { lpage = 2 });
  Alcotest.(check bool) "pins past threshold" true
    (p.Policy.decide ~lpage:2 ~cpu:0 ~access:Access.Store = Protocol.Place_global);
  Alcotest.(check (list (pair int int)))
    "hint points from the faulting cpu to the stripe home" [ (0, 2) ]
    (p.Policy.migrate_hints ());
  Alcotest.(check (list (pair int int))) "hints drain on read" [] (p.Policy.migrate_hints ());
  (* A page whose stripe home IS the faulting cpu yields no hint. *)
  p.Policy.note (Policy.Page_moved { lpage = 4 });
  p.Policy.note (Policy.Page_moved { lpage = 4 });
  Alcotest.(check bool) "still pins" true
    (p.Policy.decide ~lpage:4 ~cpu:0 ~access:Access.Store = Protocol.Place_global);
  Alcotest.(check (list (pair int int))) "no hint when already home" []
    (p.Policy.migrate_hints ());
  (* On a board machine the shared home is no CPU's memory: never hint. *)
  let ace_topo = Config.topology (small_config ()) in
  let q = Policy.migrate_threads ~threshold:1 ~topo:ace_topo ~n_pages:16 () in
  q.Policy.note (Policy.Page_moved { lpage = 0 });
  q.Policy.note (Policy.Page_moved { lpage = 0 });
  Alcotest.(check bool) "pins on the ACE too" true
    (q.Policy.decide ~lpage:0 ~cpu:1 ~access:Access.Store = Protocol.Place_global);
  Alcotest.(check (list (pair int int))) "board home yields no hint" []
    (q.Policy.migrate_hints ())

(* Satellite: the reconsider expiry path end-to-end through the pmap
   layer — pin, let the window elapse, let the periodic scan drop the
   mappings (emitting Page_unpin + Reconsider_scan), and watch the fresh
   fault re-decide LOCAL. *)
let test_reconsider_expiry_end_to_end () =
  let config = small_config () in
  let now = ref 0. in
  let policy =
    Policy.reconsider ~threshold:0 ~window_ns:1000.
      ~now:(fun () -> !now)
      ~n_pages:config.Config.global_pages ()
  in
  let obs = Numa_obs.Hub.create () in
  let unpins = ref 0 and scans = ref [] in
  Numa_obs.Hub.attach obs ~name:"watch" (fun ~ts:_ ev ->
      match ev with
      | Numa_obs.Event.Page_unpin _ -> incr unpins
      | Numa_obs.Event.Reconsider_scan { expired } -> scans := expired :: !scans
      | _ -> ());
  let mgr = Pmap_manager.create ~obs ~config ~policy () in
  let ops = Pmap_manager.ops mgr in
  let pmap = ops.Numa_vm.Pmap_intf.pmap_create ~name:"t" in
  let enter ~cpu =
    ops.Numa_vm.Pmap_intf.enter ~pmap ~cpu ~vpage:0 ~lpage:0
      ~min_prot:(Prot.of_access Access.Store) ~max_prot:Prot.Read_write
  in
  ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter ~cpu:0;
  enter ~cpu:1 (* the migration counts move #1, putting it over threshold 0 *);
  enter ~cpu:0 (* ... so this fault pins the page in global memory *);
  Alcotest.(check int) "pinned" 1 (policy.Policy.n_pinned ());
  (match Numa_manager.state_of (Pmap_manager.manager mgr) ~lpage:0 with
  | Numa_manager.Global_writable -> ()
  | st -> Alcotest.failf "expected global-writable, got %a" Numa_manager.pp_state st);
  now := 500.;
  Alcotest.(check int) "scan inside the window drops nothing" 0
    (Pmap_manager.reconsider_scan mgr);
  Alcotest.(check bool) "still mapped" true
    (ops.Numa_vm.Pmap_intf.resident ~pmap ~cpu:0 ~vpage:0 <> None);
  now := 2000.;
  Alcotest.(check int) "scan after the window drops the pin" 1
    (Pmap_manager.reconsider_scan mgr);
  Alcotest.(check int) "one Page_unpin" 1 !unpins;
  Alcotest.(check (list int)) "one Reconsider_scan totalling it" [ 1 ] !scans;
  Alcotest.(check bool) "mapping dropped on cpu 0" true
    (ops.Numa_vm.Pmap_intf.resident ~pmap ~cpu:0 ~vpage:0 = None);
  Alcotest.(check bool) "mapping dropped on cpu 1" true
    (ops.Numa_vm.Pmap_intf.resident ~pmap ~cpu:1 ~vpage:0 = None);
  (* The forced fresh fault re-decides LOCAL and the page leaves global. *)
  enter ~cpu:0;
  Alcotest.(check int) "no pin after re-decision" 0 (policy.Policy.n_pinned ());
  (match Numa_manager.state_of (Pmap_manager.manager mgr) ~lpage:0 with
  | Numa_manager.Local_writable 0 -> ()
  | st -> Alcotest.failf "expected local-writable(0), got %a" Numa_manager.pp_state st);
  (match Numa_manager.check_invariants (Pmap_manager.manager mgr) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariant: %s" msg)

(* --- manager transitions ------------------------------------------------- *)

let test_first_touch_read_replicates () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:1 ~lpage:0 ~access:Access.Load;
  check_state env ~lpage:0 Numa_manager.Read_only;
  Alcotest.(check (list int)) "replica on reader" [ 1 ]
    (Numa_manager.replica_nodes (Pmap_manager.manager env.mgr) ~lpage:0);
  check_inv env

let test_first_touch_write_owns () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:2 ~lpage:0 ~access:Access.Store;
  check_state env ~lpage:0 (Numa_manager.Local_writable 2);
  check_inv env

let test_replication_across_readers () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  for cpu = 0 to 3 do
    enter env ~cpu ~lpage:0 ~access:Access.Load
  done;
  check_state env ~lpage:0 Numa_manager.Read_only;
  Alcotest.(check int) "4 replicas" 4
    (List.length (Numa_manager.replica_nodes (Pmap_manager.manager env.mgr) ~lpage:0));
  check_inv env

let test_write_invalidates_replicas () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  for cpu = 0 to 3 do
    enter env ~cpu ~lpage:0 ~access:Access.Load
  done;
  enter env ~cpu:1 ~lpage:0 ~access:Access.Store;
  check_state env ~lpage:0 (Numa_manager.Local_writable 1);
  Alcotest.(check (list int)) "only writer holds a copy" [ 1 ]
    (Numa_manager.replica_nodes (Pmap_manager.manager env.mgr) ~lpage:0);
  (* Readers' mappings were shot down. *)
  Alcotest.(check bool) "reader 0 unmapped" true
    (env.ops.Numa_vm.Pmap_intf.resident ~pmap:env.pmap ~cpu:0 ~vpage:0 = None);
  check_inv env

let test_write_write_migration_counts_moves () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  enter env ~cpu:1 ~lpage:0 ~access:Access.Store;
  check_state env ~lpage:0 (Numa_manager.Local_writable 1);
  Alcotest.(check int) "one move" 1
    (Numa_manager.moves_of (Pmap_manager.manager env.mgr) ~lpage:0);
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  Alcotest.(check int) "two moves" 2
    (Numa_manager.moves_of (Pmap_manager.manager env.mgr) ~lpage:0);
  check_inv env

let test_read_of_written_page_moves_to_read_only () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  enter env ~cpu:3 ~lpage:0 ~access:Access.Load;
  (* Table 1, LOCAL x local-writable-other: sync&flush other, copy, RO. *)
  check_state env ~lpage:0 Numa_manager.Read_only;
  Alcotest.(check (list int)) "reader holds the only copy" [ 3 ]
    (Numa_manager.replica_nodes (Pmap_manager.manager env.mgr) ~lpage:0);
  Alcotest.(check int) "counts as a move" 1
    (Numa_manager.moves_of (Pmap_manager.manager env.mgr) ~lpage:0);
  check_inv env

let test_pinning_after_threshold () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  (* Ping-pong writes; with the default threshold (4) the fifth move takes
     the count past the threshold and the next fault pins the page. *)
  for round = 0 to 6 do
    enter env ~cpu:(round mod 2) ~lpage:0 ~access:Access.Store
  done;
  check_state env ~lpage:0 Numa_manager.Global_writable;
  Alcotest.(check int) "policy pinned it" 1 ((Pmap_manager.policy env.mgr).Policy.n_pinned ());
  (* Further requests stay global with no new moves. *)
  let before = Numa_manager.moves_of (Pmap_manager.manager env.mgr) ~lpage:0 in
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  enter env ~cpu:1 ~lpage:0 ~access:Access.Load;
  Alcotest.(check int) "no more moves once pinned" before
    (Numa_manager.moves_of (Pmap_manager.manager env.mgr) ~lpage:0);
  check_state env ~lpage:0 Numa_manager.Global_writable;
  check_inv env

let test_sole_replica_write_upgrade_is_free () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:2 ~lpage:0 ~access:Access.Load;
  enter env ~cpu:2 ~lpage:0 ~access:Access.Store;
  (* Private read-then-write: no move counted (nothing left another node). *)
  Alcotest.(check int) "no moves" 0
    (Numa_manager.moves_of (Pmap_manager.manager env.mgr) ~lpage:0);
  check_state env ~lpage:0 (Numa_manager.Local_writable 2);
  check_inv env

let test_zero_fill_is_lazy_and_local () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:5;
  let stats = Pmap_manager.stats env.mgr in
  Alcotest.(check int) "no zeroing yet" 0
    (stats.Numa_stats.zero_fills_local + stats.Numa_stats.zero_fills_global);
  enter env ~cpu:0 ~lpage:5 ~access:Access.Store;
  Alcotest.(check int) "zeroed locally at first touch" 1 stats.Numa_stats.zero_fills_local;
  Alcotest.(check int) "never zeroed in global" 0 stats.Numa_stats.zero_fills_global

let test_local_memory_exhaustion_falls_back_global () =
  (* One local frame per node: the second distinct page placed on a node
     must fall back to global. *)
  let env = make_env ~config:(small_config ~local_pages:1 ()) () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:1;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  check_state env ~lpage:0 (Numa_manager.Local_writable 0);
  enter env ~cpu:0 ~lpage:1 ~access:Access.Store;
  check_state env ~lpage:1 Numa_manager.Global_writable;
  let stats = Pmap_manager.stats env.mgr in
  Alcotest.(check int) "fallback recorded" 1 stats.Numa_stats.local_fallbacks;
  check_inv env

let test_reset_page_forgets_everything () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  enter env ~cpu:1 ~lpage:0 ~access:Access.Store;
  let tag = env.ops.Numa_vm.Pmap_intf.free_page ~lpage:0 in
  check_state env ~lpage:0 Numa_manager.Untouched;
  Alcotest.(check int) "moves reset" 0
    (Numa_manager.moves_of (Pmap_manager.manager env.mgr) ~lpage:0);
  Alcotest.(check (list int)) "replicas freed" []
    (Numa_manager.replica_nodes (Pmap_manager.manager env.mgr) ~lpage:0);
  env.ops.Numa_vm.Pmap_intf.free_page_sync tag;
  Alcotest.check_raises "tag is single-use"
    (Invalid_argument "pmap_free_page_sync: unknown or already-synced tag") (fun () ->
      env.ops.Numa_vm.Pmap_intf.free_page_sync tag);
  check_inv env

(* --- content movement ---------------------------------------------------- *)

let test_content_follows_protocol () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  env.ops.Numa_vm.Pmap_intf.write_slot ~pmap:env.pmap ~cpu:0 ~vpage:0 111;
  (* Another CPU writes: content must migrate through global. *)
  enter env ~cpu:1 ~lpage:0 ~access:Access.Store;
  Alcotest.(check int) "cpu1 reads what cpu0 wrote" 111
    (env.ops.Numa_vm.Pmap_intf.read_slot ~pmap:env.pmap ~cpu:1 ~vpage:0);
  env.ops.Numa_vm.Pmap_intf.write_slot ~pmap:env.pmap ~cpu:1 ~vpage:0 222;
  (* Pin it and check the final sync reached global memory. *)
  for round = 0 to 5 do
    enter env ~cpu:(round mod 2) ~lpage:0 ~access:Access.Store
  done;
  Alcotest.(check int) "global master holds latest" 222
    (env.ops.Numa_vm.Pmap_intf.extract_content ~lpage:0)

let test_install_and_extract () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.install_page ~lpage:7 ~content:4242;
  Alcotest.(check int) "extract" 4242 (env.ops.Numa_vm.Pmap_intf.extract_content ~lpage:7);
  (* First touch of installed content copies it local, not zeroes. *)
  enter env ~cpu:0 ~lpage:7 ~access:Access.Load;
  Alcotest.(check int) "reader sees installed content" 4242
    (env.ops.Numa_vm.Pmap_intf.read_slot ~pmap:env.pmap ~cpu:0 ~vpage:7)

(* --- pmap interface details ------------------------------------------------ *)

let test_min_max_protection_mapping () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  (* Read fault on a writable region: mapped read-only (provisional
     replication), so a later write must fault again. *)
  enter env ~cpu:0 ~lpage:0 ~access:Access.Load;
  (match env.ops.Numa_vm.Pmap_intf.resident ~pmap:env.pmap ~cpu:0 ~vpage:0 with
  | Some (prot, _) ->
      Alcotest.(check bool) "provisionally read-only" true (prot = Prot.Read_only)
  | None -> Alcotest.fail "not resident");
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  match env.ops.Numa_vm.Pmap_intf.resident ~pmap:env.pmap ~cpu:0 ~vpage:0 with
  | Some (prot, _) -> Alcotest.(check bool) "writable after write fault" true (prot = Prot.Read_write)
  | None -> Alcotest.fail "not resident after upgrade"

let test_protect_clamps_and_removes () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  env.ops.Numa_vm.Pmap_intf.protect ~pmap:env.pmap ~vpage:0 ~n:1 Prot.Read_only;
  (match env.ops.Numa_vm.Pmap_intf.resident ~pmap:env.pmap ~cpu:0 ~vpage:0 with
  | Some (prot, _) -> Alcotest.(check bool) "clamped to RO" true (prot = Prot.Read_only)
  | None -> Alcotest.fail "mapping should survive RO clamp");
  env.ops.Numa_vm.Pmap_intf.protect ~pmap:env.pmap ~vpage:0 ~n:1 Prot.No_access;
  Alcotest.(check bool) "no-access removes" true
    (env.ops.Numa_vm.Pmap_intf.resident ~pmap:env.pmap ~cpu:0 ~vpage:0 = None)

let test_remove_all_leaves_cache_state () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Load;
  enter env ~cpu:1 ~lpage:0 ~access:Access.Load;
  env.ops.Numa_vm.Pmap_intf.remove_all ~lpage:0;
  Alcotest.(check bool) "mappings gone" true
    (env.ops.Numa_vm.Pmap_intf.resident ~pmap:env.pmap ~cpu:0 ~vpage:0 = None);
  (* Replicas persist: pmap_remove_all is mapping-only. *)
  Alcotest.(check int) "replicas kept" 2
    (List.length (Numa_manager.replica_nodes (Pmap_manager.manager env.mgr) ~lpage:0))

let test_pragmas_override_policy () =
  let env = make_env () in
  Pmap_manager.set_pragma env.mgr ~pmap:env.pmap ~vpage:0 ~n:1
    (Some Numa_vm.Region_attr.Noncacheable);
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  check_state env ~lpage:0 Numa_manager.Global_writable;
  (* Cacheable pragma pins nothing even under ping-pong. *)
  Pmap_manager.set_pragma env.mgr ~pmap:env.pmap ~vpage:1 ~n:1
    (Some Numa_vm.Region_attr.Cacheable);
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:1;
  for round = 0 to 11 do
    env.ops.Numa_vm.Pmap_intf.enter ~pmap:env.pmap ~cpu:(round mod 2) ~vpage:1 ~lpage:1
      ~min_prot:Prot.Read_write ~max_prot:Prot.Read_write
  done;
  (match state env ~lpage:1 with
  | Numa_manager.Local_writable _ -> ()
  | st -> Alcotest.failf "cacheable page pinned: %a" Numa_manager.pp_state st);
  (* Clearing the pragma hands control back to the (now well past
     threshold) policy. *)
  Pmap_manager.set_pragma env.mgr ~pmap:env.pmap ~vpage:1 ~n:1 None;
  enter env ~cpu:0 ~lpage:1 ~access:Access.Store;
  check_state env ~lpage:1 Numa_manager.Global_writable

let test_homed_pages () =
  let env = make_env () in
  Pmap_manager.set_pragma env.mgr ~pmap:env.pmap ~vpage:0 ~n:1
    (Some (Numa_vm.Region_attr.Homed 3));
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  (* Any CPU's fault places the page in node 3's local memory. *)
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  check_state env ~lpage:0 (Numa_manager.Homed 3);
  Alcotest.(check (list int)) "single copy at the home" [ 3 ]
    (Numa_manager.replica_nodes (Pmap_manager.manager env.mgr) ~lpage:0);
  (* The non-home CPU's mapping is remote; the home CPU's is local. *)
  (match env.ops.Numa_vm.Pmap_intf.resident ~pmap:env.pmap ~cpu:0 ~vpage:0 with
  | Some (_, where) -> Alcotest.(check bool) "remote for cpu 0" true (where = Location.Remote_local)
  | None -> Alcotest.fail "cpu 0 not resident");
  enter env ~cpu:3 ~lpage:0 ~access:Access.Load;
  (match env.ops.Numa_vm.Pmap_intf.resident ~pmap:env.pmap ~cpu:3 ~vpage:0 with
  | Some (_, where) -> Alcotest.(check bool) "local for the home" true (where = Location.Local_here)
  | None -> Alcotest.fail "cpu 3 not resident");
  (* Writes through remote mappings are coherent: one physical frame. *)
  env.ops.Numa_vm.Pmap_intf.write_slot ~pmap:env.pmap ~cpu:0 ~vpage:0 555;
  Alcotest.(check int) "home reads the remote write" 555
    (env.ops.Numa_vm.Pmap_intf.read_slot ~pmap:env.pmap ~cpu:3 ~vpage:0);
  (* Ping-pong writes never move or pin the page. *)
  for round = 0 to 9 do
    enter env ~cpu:(round mod 2) ~lpage:0 ~access:Access.Store
  done;
  check_state env ~lpage:0 (Numa_manager.Homed 3);
  Alcotest.(check int) "no moves" 0
    (Numa_manager.moves_of (Pmap_manager.manager env.mgr) ~lpage:0);
  (* extract_content syncs the home frame back to global. *)
  Alcotest.(check int) "extract syncs home" 555
    (env.ops.Numa_vm.Pmap_intf.extract_content ~lpage:0);
  check_inv env;
  (* Clearing the pragma demotes the page back to policy control. *)
  Pmap_manager.set_pragma env.mgr ~pmap:env.pmap ~vpage:0 ~n:1 None;
  enter env ~cpu:1 ~lpage:0 ~access:Access.Store;
  (match state env ~lpage:0 with
  | Numa_manager.Homed _ -> Alcotest.fail "still homed after pragma cleared"
  | _ -> ());
  Alcotest.(check int) "content survives demotion" 555
    (env.ops.Numa_vm.Pmap_intf.read_slot ~pmap:env.pmap ~cpu:1 ~vpage:0);
  check_inv env

let test_homed_falls_back_when_home_full () =
  let env = make_env ~config:(small_config ~local_pages:1 ()) () in
  (* Fill node 2's only local frame. *)
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:5;
  enter env ~cpu:2 ~lpage:5 ~access:Access.Store;
  Pmap_manager.set_pragma env.mgr ~pmap:env.pmap ~vpage:0 ~n:1
    (Some (Numa_vm.Region_attr.Homed 2));
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  check_state env ~lpage:0 Numa_manager.Global_writable;
  check_inv env

let test_placement_summary () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:1;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  enter env ~cpu:0 ~lpage:1 ~access:Access.Load;
  let summary = Pmap_manager.placement_summary env.mgr in
  Alcotest.(check (option int)) "one local-writable" (Some 1)
    (List.assoc_opt "local-writable" summary);
  Alcotest.(check (option int)) "one read-only" (Some 1)
    (List.assoc_opt "read-only (replicated)" summary);
  Alcotest.(check (option int)) "rest untouched" (Some 30)
    (List.assoc_opt "untouched" summary)

let test_policy_swap_keeps_state () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  Pmap_manager.set_policy env.mgr (Policy.all_global ());
  (* Existing cache state intact... *)
  check_state env ~lpage:0 (Numa_manager.Local_writable 0);
  (* ...but the next fault follows the new policy. *)
  enter env ~cpu:1 ~lpage:0 ~access:Access.Store;
  check_state env ~lpage:0 Numa_manager.Global_writable;
  check_inv env

(* --- software-TLB shootdown through the protocol ------------------------ *)

let test_tlb_shootdown_on_ownership_move () =
  let env = make_env () in
  let mmu = Pmap_manager.mmu env.mgr in
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  (* Warm CPU 0's software TLB: the first translate fills, the second hits. *)
  (match Mmu.translate mmu ~pmap:env.pmap ~cpu:0 ~vpage:0 with
  | Some _ -> ()
  | None -> Alcotest.fail "mapping missing after the fault");
  ignore (Mmu.translate mmu ~pmap:env.pmap ~cpu:0 ~vpage:0);
  Alcotest.(check bool) "warm translation hits" true (Mmu.tlb_hits mmu >= 1);
  let before = Mmu.tlb_shootdowns mmu in
  (* A store from CPU 1 moves ownership; dropping CPU 0's mapping must also
     shoot down its cached translation. *)
  enter env ~cpu:1 ~lpage:0 ~access:Access.Store;
  Alcotest.(check bool) "shootdown counted" true (Mmu.tlb_shootdowns mmu > before);
  (* No stale fast path: the TLB agrees with the hash table. *)
  Alcotest.(check bool) "cpu 0 translation gone" true
    (Mmu.translate mmu ~pmap:env.pmap ~cpu:0 ~vpage:0 = None);
  Alcotest.(check bool) "cpu 1 translation live" true
    (Mmu.translate mmu ~pmap:env.pmap ~cpu:1 ~vpage:0 <> None);
  check_inv env

let test_tlb_shootdown_on_all_caching_cpus () =
  let env = make_env () in
  let mmu = Pmap_manager.mmu env.mgr in
  (* Three readers replicate the page; warm each reader's TLB. *)
  for cpu = 0 to 2 do
    enter env ~cpu ~lpage:0 ~access:Access.Load;
    ignore (Mmu.translate mmu ~pmap:env.pmap ~cpu ~vpage:0)
  done;
  let before = Mmu.tlb_shootdowns mmu in
  (* The writer invalidates every replica: all cached translations die. *)
  enter env ~cpu:3 ~lpage:0 ~access:Access.Store;
  Alcotest.(check bool) "at least the readers' entries shot down" true
    (Mmu.tlb_shootdowns mmu - before >= 3);
  for cpu = 0 to 2 do
    Alcotest.(check bool) "reader translation gone" true
      (Mmu.translate mmu ~pmap:env.pmap ~cpu ~vpage:0 = None)
  done;
  check_inv env

let suite =
  [
    Alcotest.test_case "move-limit policy" `Quick test_policy_move_limit;
    Alcotest.test_case "all-global / never-pin" `Quick test_policy_all_global_never_pin;
    Alcotest.test_case "random policy is sticky" `Quick test_policy_random_sticky;
    Alcotest.test_case "reconsider policy expires pins" `Quick test_policy_reconsider_expires;
    Alcotest.test_case "random policy forgets on free" `Quick
      test_policy_random_forgets_on_free;
    Alcotest.test_case "decay policy unpins as scores cool" `Quick test_policy_decay_unpins;
    Alcotest.test_case "bandwidth-aware policy on stripes" `Quick
      test_policy_bandwidth_aware_stripe;
    Alcotest.test_case "bandwidth-aware policy on a slow link" `Quick
      test_policy_bandwidth_aware_slow_link;
    Alcotest.test_case "migrate-threads policy hints" `Quick
      test_policy_migrate_threads_hints;
    Alcotest.test_case "reconsider expiry end-to-end" `Quick
      test_reconsider_expiry_end_to_end;
    Alcotest.test_case "first touch read replicates" `Quick test_first_touch_read_replicates;
    Alcotest.test_case "first touch write owns" `Quick test_first_touch_write_owns;
    Alcotest.test_case "replication across readers" `Quick test_replication_across_readers;
    Alcotest.test_case "write invalidates replicas" `Quick test_write_invalidates_replicas;
    Alcotest.test_case "write-write migration counts moves" `Quick
      test_write_write_migration_counts_moves;
    Alcotest.test_case "read of written page -> read-only" `Quick
      test_read_of_written_page_moves_to_read_only;
    Alcotest.test_case "pinning after threshold" `Quick test_pinning_after_threshold;
    Alcotest.test_case "sole-replica write upgrade is free" `Quick
      test_sole_replica_write_upgrade_is_free;
    Alcotest.test_case "zero fill lazy and local" `Quick test_zero_fill_is_lazy_and_local;
    Alcotest.test_case "local exhaustion falls back global" `Quick
      test_local_memory_exhaustion_falls_back_global;
    Alcotest.test_case "reset page forgets everything" `Quick
      test_reset_page_forgets_everything;
    Alcotest.test_case "content follows protocol" `Quick test_content_follows_protocol;
    Alcotest.test_case "install and extract content" `Quick test_install_and_extract;
    Alcotest.test_case "min/max protection mapping" `Quick test_min_max_protection_mapping;
    Alcotest.test_case "protect clamps and removes" `Quick test_protect_clamps_and_removes;
    Alcotest.test_case "remove_all leaves cache state" `Quick
      test_remove_all_leaves_cache_state;
    Alcotest.test_case "pragmas override policy" `Quick test_pragmas_override_policy;
    Alcotest.test_case "homed pages (remote references)" `Quick test_homed_pages;
    Alcotest.test_case "homed falls back when home full" `Quick
      test_homed_falls_back_when_home_full;
    Alcotest.test_case "placement summary" `Quick test_placement_summary;
    Alcotest.test_case "policy swap keeps state" `Quick test_policy_swap_keeps_state;
    Alcotest.test_case "tlb shootdown on ownership move" `Quick
      test_tlb_shootdown_on_ownership_move;
    Alcotest.test_case "tlb shootdown on all caching cpus" `Quick
      test_tlb_shootdown_on_all_caching_cpus;
  ]
