(* Unit tests for the NUMA core: policies, the protocol executor, and the
   pmap manager, driven directly (no engine). *)

open Numa_machine
open Numa_core

let small_config ?(n_cpus = 4) ?(local_pages = 16) () =
  Config.ace ~n_cpus ~local_pages_per_cpu:local_pages ~global_pages:32 ()

type env = {
  mgr : Pmap_manager.t;
  ops : Numa_vm.Pmap_intf.ops;
  pmap : int;
  config : Config.t;
}

let make_env ?policy ?(config = small_config ()) () =
  let policy =
    match policy with
    | Some p -> p
    | None -> Policy.move_limit ~n_pages:config.Config.global_pages ()
  in
  let mgr = Pmap_manager.create ~config ~policy () in
  let ops = Pmap_manager.ops mgr in
  let pmap = ops.Numa_vm.Pmap_intf.pmap_create ~name:"t" in
  { mgr; ops; pmap; config }

(* Shorthand: fault-style entry for (cpu, vpage, lpage). vpage = lpage by
   convention in these tests. *)
let enter env ~cpu ~lpage ~(access : Access.t) =
  env.ops.Numa_vm.Pmap_intf.enter ~pmap:env.pmap ~cpu ~vpage:lpage ~lpage
    ~min_prot:(Prot.of_access access) ~max_prot:Prot.Read_write

let state env ~lpage = Numa_manager.state_of (Pmap_manager.manager env.mgr) ~lpage

let check_inv env =
  match Numa_manager.check_invariants (Pmap_manager.manager env.mgr) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariant: %s" msg

let check_state env ~lpage expected =
  let got = state env ~lpage in
  if got <> expected then
    Alcotest.failf "expected %a, got %a" Numa_manager.pp_state expected
      Numa_manager.pp_state got

(* --- policy units ------------------------------------------------------ *)

let test_policy_move_limit () =
  let p = Policy.move_limit ~threshold:2 ~n_pages:8 () in
  let decide () = p.Policy.decide ~lpage:0 ~cpu:0 ~access:Access.Store in
  Alcotest.(check bool) "local before moves" true (decide () = Protocol.Place_local);
  p.Policy.note (Policy.Page_moved { lpage = 0 });
  p.Policy.note (Policy.Page_moved { lpage = 0 });
  Alcotest.(check bool) "local at threshold" true (decide () = Protocol.Place_local);
  p.Policy.note (Policy.Page_moved { lpage = 0 });
  Alcotest.(check bool) "global past threshold" true (decide () = Protocol.Place_global);
  Alcotest.(check int) "one pin" 1 (p.Policy.n_pinned ());
  (* Other pages are unaffected. *)
  Alcotest.(check bool) "page 1 still local" true
    (p.Policy.decide ~lpage:1 ~cpu:0 ~access:Access.Store = Protocol.Place_local);
  (* Freeing resets history (footnote 4). *)
  p.Policy.note (Policy.Page_freed { lpage = 0 });
  Alcotest.(check bool) "local again after free" true (decide () = Protocol.Place_local);
  Alcotest.(check int) "unpinned" 0 (p.Policy.n_pinned ())

let test_policy_all_global_never_pin () =
  let g = Policy.all_global () and l = Policy.never_pin () in
  for lpage = 0 to 3 do
    Alcotest.(check bool) "all-global" true
      (g.Policy.decide ~lpage ~cpu:1 ~access:Access.Load = Protocol.Place_global);
    Alcotest.(check bool) "never-pin" true
      (l.Policy.decide ~lpage ~cpu:1 ~access:Access.Store = Protocol.Place_local)
  done;
  (* Move notifications never change their answers. *)
  l.Policy.note (Policy.Page_moved { lpage = 0 });
  Alcotest.(check bool) "never-pin ignores moves" true
    (l.Policy.decide ~lpage:0 ~cpu:0 ~access:Access.Store = Protocol.Place_local)

let test_policy_random_sticky () =
  let prng = Numa_util.Prng.create ~seed:3L in
  let p = Policy.random ~prng ~p_global:0.5 ~n_pages:64 in
  for lpage = 0 to 63 do
    let first = p.Policy.decide ~lpage ~cpu:0 ~access:Access.Load in
    for _ = 1 to 5 do
      Alcotest.(check bool) "sticky" true
        (p.Policy.decide ~lpage ~cpu:0 ~access:Access.Load = first)
    done
  done;
  let pins = p.Policy.n_pinned () in
  Alcotest.(check bool) "roughly half global" true (pins > 10 && pins < 54)

let test_policy_reconsider_expires () =
  let now = ref 0. in
  let p =
    Policy.reconsider ~threshold:1 ~window_ns:1000. ~now:(fun () -> !now) ~n_pages:4 ()
  in
  p.Policy.note (Policy.Page_moved { lpage = 0 });
  p.Policy.note (Policy.Page_moved { lpage = 0 });
  Alcotest.(check bool) "pinned" true
    (p.Policy.decide ~lpage:0 ~cpu:0 ~access:Access.Store = Protocol.Place_global);
  now := 500.;
  Alcotest.(check bool) "still pinned inside window" true
    (p.Policy.decide ~lpage:0 ~cpu:0 ~access:Access.Store = Protocol.Place_global);
  now := 2000.;
  Alcotest.(check bool) "unpinned after window" true
    (p.Policy.decide ~lpage:0 ~cpu:0 ~access:Access.Store = Protocol.Place_local);
  Alcotest.(check int) "no longer pinned" 0 (p.Policy.n_pinned ())

(* --- manager transitions ------------------------------------------------- *)

let test_first_touch_read_replicates () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:1 ~lpage:0 ~access:Access.Load;
  check_state env ~lpage:0 Numa_manager.Read_only;
  Alcotest.(check (list int)) "replica on reader" [ 1 ]
    (Numa_manager.replica_nodes (Pmap_manager.manager env.mgr) ~lpage:0);
  check_inv env

let test_first_touch_write_owns () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:2 ~lpage:0 ~access:Access.Store;
  check_state env ~lpage:0 (Numa_manager.Local_writable 2);
  check_inv env

let test_replication_across_readers () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  for cpu = 0 to 3 do
    enter env ~cpu ~lpage:0 ~access:Access.Load
  done;
  check_state env ~lpage:0 Numa_manager.Read_only;
  Alcotest.(check int) "4 replicas" 4
    (List.length (Numa_manager.replica_nodes (Pmap_manager.manager env.mgr) ~lpage:0));
  check_inv env

let test_write_invalidates_replicas () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  for cpu = 0 to 3 do
    enter env ~cpu ~lpage:0 ~access:Access.Load
  done;
  enter env ~cpu:1 ~lpage:0 ~access:Access.Store;
  check_state env ~lpage:0 (Numa_manager.Local_writable 1);
  Alcotest.(check (list int)) "only writer holds a copy" [ 1 ]
    (Numa_manager.replica_nodes (Pmap_manager.manager env.mgr) ~lpage:0);
  (* Readers' mappings were shot down. *)
  Alcotest.(check bool) "reader 0 unmapped" true
    (env.ops.Numa_vm.Pmap_intf.resident ~pmap:env.pmap ~cpu:0 ~vpage:0 = None);
  check_inv env

let test_write_write_migration_counts_moves () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  enter env ~cpu:1 ~lpage:0 ~access:Access.Store;
  check_state env ~lpage:0 (Numa_manager.Local_writable 1);
  Alcotest.(check int) "one move" 1
    (Numa_manager.moves_of (Pmap_manager.manager env.mgr) ~lpage:0);
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  Alcotest.(check int) "two moves" 2
    (Numa_manager.moves_of (Pmap_manager.manager env.mgr) ~lpage:0);
  check_inv env

let test_read_of_written_page_moves_to_read_only () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  enter env ~cpu:3 ~lpage:0 ~access:Access.Load;
  (* Table 1, LOCAL x local-writable-other: sync&flush other, copy, RO. *)
  check_state env ~lpage:0 Numa_manager.Read_only;
  Alcotest.(check (list int)) "reader holds the only copy" [ 3 ]
    (Numa_manager.replica_nodes (Pmap_manager.manager env.mgr) ~lpage:0);
  Alcotest.(check int) "counts as a move" 1
    (Numa_manager.moves_of (Pmap_manager.manager env.mgr) ~lpage:0);
  check_inv env

let test_pinning_after_threshold () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  (* Ping-pong writes; with the default threshold (4) the fifth move takes
     the count past the threshold and the next fault pins the page. *)
  for round = 0 to 6 do
    enter env ~cpu:(round mod 2) ~lpage:0 ~access:Access.Store
  done;
  check_state env ~lpage:0 Numa_manager.Global_writable;
  Alcotest.(check int) "policy pinned it" 1 ((Pmap_manager.policy env.mgr).Policy.n_pinned ());
  (* Further requests stay global with no new moves. *)
  let before = Numa_manager.moves_of (Pmap_manager.manager env.mgr) ~lpage:0 in
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  enter env ~cpu:1 ~lpage:0 ~access:Access.Load;
  Alcotest.(check int) "no more moves once pinned" before
    (Numa_manager.moves_of (Pmap_manager.manager env.mgr) ~lpage:0);
  check_state env ~lpage:0 Numa_manager.Global_writable;
  check_inv env

let test_sole_replica_write_upgrade_is_free () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:2 ~lpage:0 ~access:Access.Load;
  enter env ~cpu:2 ~lpage:0 ~access:Access.Store;
  (* Private read-then-write: no move counted (nothing left another node). *)
  Alcotest.(check int) "no moves" 0
    (Numa_manager.moves_of (Pmap_manager.manager env.mgr) ~lpage:0);
  check_state env ~lpage:0 (Numa_manager.Local_writable 2);
  check_inv env

let test_zero_fill_is_lazy_and_local () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:5;
  let stats = Pmap_manager.stats env.mgr in
  Alcotest.(check int) "no zeroing yet" 0
    (stats.Numa_stats.zero_fills_local + stats.Numa_stats.zero_fills_global);
  enter env ~cpu:0 ~lpage:5 ~access:Access.Store;
  Alcotest.(check int) "zeroed locally at first touch" 1 stats.Numa_stats.zero_fills_local;
  Alcotest.(check int) "never zeroed in global" 0 stats.Numa_stats.zero_fills_global

let test_local_memory_exhaustion_falls_back_global () =
  (* One local frame per node: the second distinct page placed on a node
     must fall back to global. *)
  let env = make_env ~config:(small_config ~local_pages:1 ()) () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:1;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  check_state env ~lpage:0 (Numa_manager.Local_writable 0);
  enter env ~cpu:0 ~lpage:1 ~access:Access.Store;
  check_state env ~lpage:1 Numa_manager.Global_writable;
  let stats = Pmap_manager.stats env.mgr in
  Alcotest.(check int) "fallback recorded" 1 stats.Numa_stats.local_fallbacks;
  check_inv env

let test_reset_page_forgets_everything () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  enter env ~cpu:1 ~lpage:0 ~access:Access.Store;
  let tag = env.ops.Numa_vm.Pmap_intf.free_page ~lpage:0 in
  check_state env ~lpage:0 Numa_manager.Untouched;
  Alcotest.(check int) "moves reset" 0
    (Numa_manager.moves_of (Pmap_manager.manager env.mgr) ~lpage:0);
  Alcotest.(check (list int)) "replicas freed" []
    (Numa_manager.replica_nodes (Pmap_manager.manager env.mgr) ~lpage:0);
  env.ops.Numa_vm.Pmap_intf.free_page_sync tag;
  Alcotest.check_raises "tag is single-use"
    (Invalid_argument "pmap_free_page_sync: unknown or already-synced tag") (fun () ->
      env.ops.Numa_vm.Pmap_intf.free_page_sync tag);
  check_inv env

(* --- content movement ---------------------------------------------------- *)

let test_content_follows_protocol () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  env.ops.Numa_vm.Pmap_intf.write_slot ~pmap:env.pmap ~cpu:0 ~vpage:0 111;
  (* Another CPU writes: content must migrate through global. *)
  enter env ~cpu:1 ~lpage:0 ~access:Access.Store;
  Alcotest.(check int) "cpu1 reads what cpu0 wrote" 111
    (env.ops.Numa_vm.Pmap_intf.read_slot ~pmap:env.pmap ~cpu:1 ~vpage:0);
  env.ops.Numa_vm.Pmap_intf.write_slot ~pmap:env.pmap ~cpu:1 ~vpage:0 222;
  (* Pin it and check the final sync reached global memory. *)
  for round = 0 to 5 do
    enter env ~cpu:(round mod 2) ~lpage:0 ~access:Access.Store
  done;
  Alcotest.(check int) "global master holds latest" 222
    (env.ops.Numa_vm.Pmap_intf.extract_content ~lpage:0)

let test_install_and_extract () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.install_page ~lpage:7 ~content:4242;
  Alcotest.(check int) "extract" 4242 (env.ops.Numa_vm.Pmap_intf.extract_content ~lpage:7);
  (* First touch of installed content copies it local, not zeroes. *)
  enter env ~cpu:0 ~lpage:7 ~access:Access.Load;
  Alcotest.(check int) "reader sees installed content" 4242
    (env.ops.Numa_vm.Pmap_intf.read_slot ~pmap:env.pmap ~cpu:0 ~vpage:7)

(* --- pmap interface details ------------------------------------------------ *)

let test_min_max_protection_mapping () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  (* Read fault on a writable region: mapped read-only (provisional
     replication), so a later write must fault again. *)
  enter env ~cpu:0 ~lpage:0 ~access:Access.Load;
  (match env.ops.Numa_vm.Pmap_intf.resident ~pmap:env.pmap ~cpu:0 ~vpage:0 with
  | Some (prot, _) ->
      Alcotest.(check bool) "provisionally read-only" true (prot = Prot.Read_only)
  | None -> Alcotest.fail "not resident");
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  match env.ops.Numa_vm.Pmap_intf.resident ~pmap:env.pmap ~cpu:0 ~vpage:0 with
  | Some (prot, _) -> Alcotest.(check bool) "writable after write fault" true (prot = Prot.Read_write)
  | None -> Alcotest.fail "not resident after upgrade"

let test_protect_clamps_and_removes () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  env.ops.Numa_vm.Pmap_intf.protect ~pmap:env.pmap ~vpage:0 ~n:1 Prot.Read_only;
  (match env.ops.Numa_vm.Pmap_intf.resident ~pmap:env.pmap ~cpu:0 ~vpage:0 with
  | Some (prot, _) -> Alcotest.(check bool) "clamped to RO" true (prot = Prot.Read_only)
  | None -> Alcotest.fail "mapping should survive RO clamp");
  env.ops.Numa_vm.Pmap_intf.protect ~pmap:env.pmap ~vpage:0 ~n:1 Prot.No_access;
  Alcotest.(check bool) "no-access removes" true
    (env.ops.Numa_vm.Pmap_intf.resident ~pmap:env.pmap ~cpu:0 ~vpage:0 = None)

let test_remove_all_leaves_cache_state () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Load;
  enter env ~cpu:1 ~lpage:0 ~access:Access.Load;
  env.ops.Numa_vm.Pmap_intf.remove_all ~lpage:0;
  Alcotest.(check bool) "mappings gone" true
    (env.ops.Numa_vm.Pmap_intf.resident ~pmap:env.pmap ~cpu:0 ~vpage:0 = None);
  (* Replicas persist: pmap_remove_all is mapping-only. *)
  Alcotest.(check int) "replicas kept" 2
    (List.length (Numa_manager.replica_nodes (Pmap_manager.manager env.mgr) ~lpage:0))

let test_pragmas_override_policy () =
  let env = make_env () in
  Pmap_manager.set_pragma env.mgr ~pmap:env.pmap ~vpage:0 ~n:1
    (Some Numa_vm.Region_attr.Noncacheable);
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  check_state env ~lpage:0 Numa_manager.Global_writable;
  (* Cacheable pragma pins nothing even under ping-pong. *)
  Pmap_manager.set_pragma env.mgr ~pmap:env.pmap ~vpage:1 ~n:1
    (Some Numa_vm.Region_attr.Cacheable);
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:1;
  for round = 0 to 11 do
    env.ops.Numa_vm.Pmap_intf.enter ~pmap:env.pmap ~cpu:(round mod 2) ~vpage:1 ~lpage:1
      ~min_prot:Prot.Read_write ~max_prot:Prot.Read_write
  done;
  (match state env ~lpage:1 with
  | Numa_manager.Local_writable _ -> ()
  | st -> Alcotest.failf "cacheable page pinned: %a" Numa_manager.pp_state st);
  (* Clearing the pragma hands control back to the (now well past
     threshold) policy. *)
  Pmap_manager.set_pragma env.mgr ~pmap:env.pmap ~vpage:1 ~n:1 None;
  enter env ~cpu:0 ~lpage:1 ~access:Access.Store;
  check_state env ~lpage:1 Numa_manager.Global_writable

let test_homed_pages () =
  let env = make_env () in
  Pmap_manager.set_pragma env.mgr ~pmap:env.pmap ~vpage:0 ~n:1
    (Some (Numa_vm.Region_attr.Homed 3));
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  (* Any CPU's fault places the page in node 3's local memory. *)
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  check_state env ~lpage:0 (Numa_manager.Homed 3);
  Alcotest.(check (list int)) "single copy at the home" [ 3 ]
    (Numa_manager.replica_nodes (Pmap_manager.manager env.mgr) ~lpage:0);
  (* The non-home CPU's mapping is remote; the home CPU's is local. *)
  (match env.ops.Numa_vm.Pmap_intf.resident ~pmap:env.pmap ~cpu:0 ~vpage:0 with
  | Some (_, where) -> Alcotest.(check bool) "remote for cpu 0" true (where = Location.Remote_local)
  | None -> Alcotest.fail "cpu 0 not resident");
  enter env ~cpu:3 ~lpage:0 ~access:Access.Load;
  (match env.ops.Numa_vm.Pmap_intf.resident ~pmap:env.pmap ~cpu:3 ~vpage:0 with
  | Some (_, where) -> Alcotest.(check bool) "local for the home" true (where = Location.Local_here)
  | None -> Alcotest.fail "cpu 3 not resident");
  (* Writes through remote mappings are coherent: one physical frame. *)
  env.ops.Numa_vm.Pmap_intf.write_slot ~pmap:env.pmap ~cpu:0 ~vpage:0 555;
  Alcotest.(check int) "home reads the remote write" 555
    (env.ops.Numa_vm.Pmap_intf.read_slot ~pmap:env.pmap ~cpu:3 ~vpage:0);
  (* Ping-pong writes never move or pin the page. *)
  for round = 0 to 9 do
    enter env ~cpu:(round mod 2) ~lpage:0 ~access:Access.Store
  done;
  check_state env ~lpage:0 (Numa_manager.Homed 3);
  Alcotest.(check int) "no moves" 0
    (Numa_manager.moves_of (Pmap_manager.manager env.mgr) ~lpage:0);
  (* extract_content syncs the home frame back to global. *)
  Alcotest.(check int) "extract syncs home" 555
    (env.ops.Numa_vm.Pmap_intf.extract_content ~lpage:0);
  check_inv env;
  (* Clearing the pragma demotes the page back to policy control. *)
  Pmap_manager.set_pragma env.mgr ~pmap:env.pmap ~vpage:0 ~n:1 None;
  enter env ~cpu:1 ~lpage:0 ~access:Access.Store;
  (match state env ~lpage:0 with
  | Numa_manager.Homed _ -> Alcotest.fail "still homed after pragma cleared"
  | _ -> ());
  Alcotest.(check int) "content survives demotion" 555
    (env.ops.Numa_vm.Pmap_intf.read_slot ~pmap:env.pmap ~cpu:1 ~vpage:0);
  check_inv env

let test_homed_falls_back_when_home_full () =
  let env = make_env ~config:(small_config ~local_pages:1 ()) () in
  (* Fill node 2's only local frame. *)
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:5;
  enter env ~cpu:2 ~lpage:5 ~access:Access.Store;
  Pmap_manager.set_pragma env.mgr ~pmap:env.pmap ~vpage:0 ~n:1
    (Some (Numa_vm.Region_attr.Homed 2));
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  check_state env ~lpage:0 Numa_manager.Global_writable;
  check_inv env

let test_placement_summary () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:1;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  enter env ~cpu:0 ~lpage:1 ~access:Access.Load;
  let summary = Pmap_manager.placement_summary env.mgr in
  Alcotest.(check (option int)) "one local-writable" (Some 1)
    (List.assoc_opt "local-writable" summary);
  Alcotest.(check (option int)) "one read-only" (Some 1)
    (List.assoc_opt "read-only (replicated)" summary);
  Alcotest.(check (option int)) "rest untouched" (Some 30)
    (List.assoc_opt "untouched" summary)

let test_policy_swap_keeps_state () =
  let env = make_env () in
  env.ops.Numa_vm.Pmap_intf.zero_page ~lpage:0;
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  Pmap_manager.set_policy env.mgr (Policy.all_global ());
  (* Existing cache state intact... *)
  check_state env ~lpage:0 (Numa_manager.Local_writable 0);
  (* ...but the next fault follows the new policy. *)
  enter env ~cpu:1 ~lpage:0 ~access:Access.Store;
  check_state env ~lpage:0 Numa_manager.Global_writable;
  check_inv env

(* --- software-TLB shootdown through the protocol ------------------------ *)

let test_tlb_shootdown_on_ownership_move () =
  let env = make_env () in
  let mmu = Pmap_manager.mmu env.mgr in
  enter env ~cpu:0 ~lpage:0 ~access:Access.Store;
  (* Warm CPU 0's software TLB: the first translate fills, the second hits. *)
  (match Mmu.translate mmu ~pmap:env.pmap ~cpu:0 ~vpage:0 with
  | Some _ -> ()
  | None -> Alcotest.fail "mapping missing after the fault");
  ignore (Mmu.translate mmu ~pmap:env.pmap ~cpu:0 ~vpage:0);
  Alcotest.(check bool) "warm translation hits" true (Mmu.tlb_hits mmu >= 1);
  let before = Mmu.tlb_shootdowns mmu in
  (* A store from CPU 1 moves ownership; dropping CPU 0's mapping must also
     shoot down its cached translation. *)
  enter env ~cpu:1 ~lpage:0 ~access:Access.Store;
  Alcotest.(check bool) "shootdown counted" true (Mmu.tlb_shootdowns mmu > before);
  (* No stale fast path: the TLB agrees with the hash table. *)
  Alcotest.(check bool) "cpu 0 translation gone" true
    (Mmu.translate mmu ~pmap:env.pmap ~cpu:0 ~vpage:0 = None);
  Alcotest.(check bool) "cpu 1 translation live" true
    (Mmu.translate mmu ~pmap:env.pmap ~cpu:1 ~vpage:0 <> None);
  check_inv env

let test_tlb_shootdown_on_all_caching_cpus () =
  let env = make_env () in
  let mmu = Pmap_manager.mmu env.mgr in
  (* Three readers replicate the page; warm each reader's TLB. *)
  for cpu = 0 to 2 do
    enter env ~cpu ~lpage:0 ~access:Access.Load;
    ignore (Mmu.translate mmu ~pmap:env.pmap ~cpu ~vpage:0)
  done;
  let before = Mmu.tlb_shootdowns mmu in
  (* The writer invalidates every replica: all cached translations die. *)
  enter env ~cpu:3 ~lpage:0 ~access:Access.Store;
  Alcotest.(check bool) "at least the readers' entries shot down" true
    (Mmu.tlb_shootdowns mmu - before >= 3);
  for cpu = 0 to 2 do
    Alcotest.(check bool) "reader translation gone" true
      (Mmu.translate mmu ~pmap:env.pmap ~cpu ~vpage:0 = None)
  done;
  check_inv env

let suite =
  [
    Alcotest.test_case "move-limit policy" `Quick test_policy_move_limit;
    Alcotest.test_case "all-global / never-pin" `Quick test_policy_all_global_never_pin;
    Alcotest.test_case "random policy is sticky" `Quick test_policy_random_sticky;
    Alcotest.test_case "reconsider policy expires pins" `Quick test_policy_reconsider_expires;
    Alcotest.test_case "first touch read replicates" `Quick test_first_touch_read_replicates;
    Alcotest.test_case "first touch write owns" `Quick test_first_touch_write_owns;
    Alcotest.test_case "replication across readers" `Quick test_replication_across_readers;
    Alcotest.test_case "write invalidates replicas" `Quick test_write_invalidates_replicas;
    Alcotest.test_case "write-write migration counts moves" `Quick
      test_write_write_migration_counts_moves;
    Alcotest.test_case "read of written page -> read-only" `Quick
      test_read_of_written_page_moves_to_read_only;
    Alcotest.test_case "pinning after threshold" `Quick test_pinning_after_threshold;
    Alcotest.test_case "sole-replica write upgrade is free" `Quick
      test_sole_replica_write_upgrade_is_free;
    Alcotest.test_case "zero fill lazy and local" `Quick test_zero_fill_is_lazy_and_local;
    Alcotest.test_case "local exhaustion falls back global" `Quick
      test_local_memory_exhaustion_falls_back_global;
    Alcotest.test_case "reset page forgets everything" `Quick
      test_reset_page_forgets_everything;
    Alcotest.test_case "content follows protocol" `Quick test_content_follows_protocol;
    Alcotest.test_case "install and extract content" `Quick test_install_and_extract;
    Alcotest.test_case "min/max protection mapping" `Quick test_min_max_protection_mapping;
    Alcotest.test_case "protect clamps and removes" `Quick test_protect_clamps_and_removes;
    Alcotest.test_case "remove_all leaves cache state" `Quick
      test_remove_all_leaves_cache_state;
    Alcotest.test_case "pragmas override policy" `Quick test_pragmas_override_policy;
    Alcotest.test_case "homed pages (remote references)" `Quick test_homed_pages;
    Alcotest.test_case "homed falls back when home full" `Quick
      test_homed_falls_back_when_home_full;
    Alcotest.test_case "placement summary" `Quick test_placement_summary;
    Alcotest.test_case "policy swap keeps state" `Quick test_policy_swap_keeps_state;
    Alcotest.test_case "tlb shootdown on ownership move" `Quick
      test_tlb_shootdown_on_ownership_move;
    Alcotest.test_case "tlb shootdown on all caching cpus" `Quick
      test_tlb_shootdown_on_all_caching_cpus;
  ]
