(* Property-based tests (qcheck) on the protocol core and the full system:
   coherence against a flat reference memory, directory invariants under
   random operation sequences, and model/DP sanity. *)

open Numa_machine
open Numa_core

let qcheck t = QCheck_alcotest.to_alcotest t

(* --- random pmap-level workloads ------------------------------------------ *)

type op = Op_read of int * int | Op_write of int * int * int | Op_free of int
(* (cpu, lpage[, value]) over a small machine. *)

let n_cpus = 4
let n_pages = 6

let op_gen =
  let open QCheck.Gen in
  let cpu = int_bound (n_cpus - 1) and lpage = int_bound (n_pages - 1) in
  frequency
    [
      (5, map2 (fun c l -> Op_read (c, l)) cpu lpage);
      (5, map3 (fun c l v -> Op_write (c, l, v)) cpu lpage (int_bound 10_000));
      (1, map (fun l -> Op_free l) lpage);
    ]

let op_print = function
  | Op_read (c, l) -> Printf.sprintf "read(cpu%d, p%d)" c l
  | Op_write (c, l, v) -> Printf.sprintf "write(cpu%d, p%d, %d)" c l v
  | Op_free l -> Printf.sprintf "free(p%d)" l

let ops_arbitrary =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map op_print l))
    QCheck.Gen.(list_size (int_range 1 120) op_gen)

(* Drive a random operation sequence through the real pmap layer, mirroring
   it against a flat memory; after every step, contents must agree and the
   directory invariants must hold. *)
let run_against_reference ~policy ops =
  let config =
    Config.ace ~n_cpus ~local_pages_per_cpu:4 (* small: exercises fallback *)
      ~global_pages:n_pages ()
  in
  let mgr = Pmap_manager.create ~config ~policy:(policy ~n_pages) () in
  let pmap_ops = Pmap_manager.ops mgr in
  let pmap = pmap_ops.Numa_vm.Pmap_intf.pmap_create ~name:"prop" in
  let reference = Array.make n_pages 0 in
  let freed = Array.make n_pages false in
  let ensure ~cpu ~lpage ~access =
    (* Fault loop, as the machine-independent handler would do. *)
    let rec go n =
      if n > 3 then failwith "no convergence";
      match pmap_ops.Numa_vm.Pmap_intf.resident ~pmap ~cpu ~vpage:lpage with
      | Some (prot, _) when Prot.allows prot access -> ()
      | Some _ | None ->
          pmap_ops.Numa_vm.Pmap_intf.enter ~pmap ~cpu ~vpage:lpage ~lpage
            ~min_prot:(Prot.of_access access) ~max_prot:Prot.Read_write;
          go (n + 1)
    in
    go 0
  in
  let ok = ref true in
  let check_step () =
    (match Numa_manager.check_invariants (Pmap_manager.manager mgr) with
    | Ok () -> ()
    | Error msg -> QCheck.Test.fail_reportf "invariant violated: %s" msg);
    (* The full cross-layer sweep: directory vs MMU vs frame pools. *)
    let pol = Pmap_manager.policy mgr in
    let rep =
      Invariant.check ~pinned:pol.Policy.is_pinned
        ~manager:(Pmap_manager.manager mgr)
        ~mmu:(Pmap_manager.mmu mgr)
        ~frames:(Pmap_manager.frames mgr)
        ~config ()
    in
    match Invariant.result rep with
    | Ok () -> ()
    | Error msg -> QCheck.Test.fail_reportf "invariant sweep: %s" msg
  in
  List.iter
    (fun op ->
      (match op with
      | Op_read (cpu, lpage) ->
          if freed.(lpage) then begin
            (* Page was freed: reallocate it fresh (content resets). *)
            freed.(lpage) <- false;
            reference.(lpage) <- 0;
            pmap_ops.Numa_vm.Pmap_intf.zero_page ~lpage
          end;
          ensure ~cpu ~lpage ~access:Access.Load;
          let got = pmap_ops.Numa_vm.Pmap_intf.read_slot ~pmap ~cpu ~vpage:lpage in
          if got <> reference.(lpage) then begin
            ok := false;
            QCheck.Test.fail_reportf "cpu%d read %d from p%d, expected %d" cpu got lpage
              reference.(lpage)
          end
      | Op_write (cpu, lpage, v) ->
          if freed.(lpage) then begin
            freed.(lpage) <- false;
            reference.(lpage) <- 0;
            pmap_ops.Numa_vm.Pmap_intf.zero_page ~lpage
          end;
          ensure ~cpu ~lpage ~access:Access.Store;
          pmap_ops.Numa_vm.Pmap_intf.write_slot ~pmap ~cpu ~vpage:lpage v;
          reference.(lpage) <- v
      | Op_free lpage ->
          if not freed.(lpage) then begin
            let tag = pmap_ops.Numa_vm.Pmap_intf.free_page ~lpage in
            pmap_ops.Numa_vm.Pmap_intf.free_page_sync tag;
            freed.(lpage) <- true
          end);
      check_step ())
    ops;
  !ok

let prop_coherence_move_limit =
  QCheck.Test.make ~name:"coherence under move-limit(2)" ~count:150 ops_arbitrary
    (run_against_reference ~policy:(fun ~n_pages -> Policy.move_limit ~threshold:2 ~n_pages ()))

let prop_coherence_all_global =
  QCheck.Test.make ~name:"coherence under all-global" ~count:75 ops_arbitrary
    (run_against_reference ~policy:(fun ~n_pages ->
         ignore n_pages;
         Policy.all_global ()))

let prop_coherence_never_pin =
  QCheck.Test.make ~name:"coherence under never-pin" ~count:75 ops_arbitrary
    (run_against_reference ~policy:(fun ~n_pages ->
         ignore n_pages;
         Policy.never_pin ()))

let prop_coherence_random_policy =
  QCheck.Test.make ~name:"coherence under random placement" ~count:75 ops_arbitrary
    (run_against_reference ~policy:(fun ~n_pages ->
         Policy.random ~prng:(Numa_util.Prng.create ~seed:99L) ~p_global:0.4 ~n_pages))

(* --- engine-level coherence over the full system ---------------------------- *)

let prop_system_coherence =
  (* Random per-thread write/read scripts on shared pages with barrier
     separation: after each barrier, readers must observe the last write of
     the previous phase. *)
  QCheck.Test.make ~name:"engine + numa coherence across barriers" ~count:40
    QCheck.(pair (int_bound 1000) (int_range 2 4))
    (fun (seed, nthreads) ->
      let module System = Numa_system.System in
      let module Api = Numa_sim.Api in
      let config = Config.ace ~n_cpus:nthreads ~local_pages_per_cpu:32 ~global_pages:64 () in
      let sys = System.create ~config () in
      let data =
        System.alloc_region sys ~name:"d" ~kind:Numa_vm.Region_attr.Data
          ~sharing:Numa_vm.Region_attr.Declared_write_shared ~pages:2 ()
      in
      let barrier = System.make_barrier sys ~name:"b" ~parties:nthreads in
      let rounds = 6 in
      let failures = ref 0 in
      for i = 0 to nthreads - 1 do
        ignore
          (System.spawn sys ~cpu:i ~name:(Printf.sprintf "t%d" i)
             (fun ~stack_vpage:_ ->
               for round = 1 to rounds do
                 (* One deterministic writer per round. *)
                 let writer = (round + seed) mod nthreads in
                 let value = (round * 1000) + writer in
                 if i = writer then Api.write ~value data.System.base_vpage;
                 Api.barrier barrier;
                 let got = Api.read_value data.System.base_vpage in
                 if got <> value then incr failures;
                 Api.barrier barrier
               done))
      done;
      ignore (System.run sys);
      (match System.check_invariants sys with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "invariants: %s" msg);
      (match Numa_core.Invariant.result (System.audit sys) with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "invariant sweep: %s" msg);
      !failures = 0)

let prop_app_policy_topology_coherent =
  (* Any Table 4 application, under any builtin policy, on any builtin
     topology, with any page-table mode, run paranoid (the invariant sweep
     fires from the daemon tick and once more at the end): zero violations,
     always. The page-table axis adds the master-vs-MMU and
     replica-vs-master relations to everything the sweep already checks. *)
  QCheck.Test.make ~name:"app x policy x topology x pt-mode stays coherent" ~count:12
    QCheck.(quad (int_bound 3) (int_bound 20) (int_bound 3) (int_bound 3))
    (fun (ai, pi, ti, mi) ->
      let module System = Numa_system.System in
      let module Report = Numa_system.Report in
      let app_name = List.nth [ "imatmult"; "primes3"; "gfetch"; "plytrace" ] ai in
      let app = Option.get (Numa_apps.Registry.find app_name) in
      let specs = System.builtin_policy_specs in
      let policy = List.nth specs (pi mod List.length specs) in
      let topo_name = List.nth Config.builtin_topologies ti in
      let pt_mode =
        List.nth [ Pt.Off; Pt.Shared; Pt.Replicated None; Pt.Replicated (Some 2) ] mi
      in
      let config = Option.get (Config.of_topology_name ~n_cpus:4 topo_name) in
      let sys = System.create ~policy ~paranoid:true ~pt_mode ~config () in
      app.Numa_apps.App_sig.setup sys
        { Numa_apps.App_sig.nthreads = 4; scale = 0.02; seed = 42L };
      let r = System.run sys in
      match r.Report.robustness with
      | Some rb ->
          if rb.Report.invariant_violations > 0 then
            QCheck.Test.fail_reportf "%s under %s on %s with pt-mode %s: %d violations (%s)"
              app_name
              (System.policy_spec_name policy)
              topo_name (Pt.mode_to_string pt_mode) rb.Report.invariant_violations
              (match rb.Report.first_violations with v :: _ -> v | [] -> "?")
          else rb.Report.invariant_checks > 0
      | None -> QCheck.Test.fail_reportf "paranoid run lost its robustness section")

(* --- model sanity --------------------------------------------------------------- *)

let prop_model_roundtrip =
  (* Solving equations 4/5 on times generated from equation 2 recovers the
     original alpha and beta. *)
  QCheck.Test.make ~name:"alpha/beta solve inverts equation 2" ~count:300
    QCheck.(triple (float_bound_inclusive 1.0) (float_bound_inclusive 1.0) pos_float)
    (fun (a0, b0, t_local_raw) ->
      QCheck.assume (t_local_raw > 1e-3 && t_local_raw < 1e12);
      QCheck.assume (b0 > 0.01);
      let gl = 2.0 in
      let t_local = t_local_raw in
      let t_numa = Numa_metrics.Model.predicted_t_numa ~t_local ~alpha:a0 ~beta:b0 ~gl in
      let t_global = Numa_metrics.Model.predicted_t_numa ~t_local ~alpha:0. ~beta:b0 ~gl in
      QCheck.assume (t_global -. t_local > 1e-9 *. t_local);
      let times = { Numa_metrics.Model.t_global; t_numa; t_local } in
      let alpha' = Numa_metrics.Model.alpha times in
      let beta' = Numa_metrics.Model.beta times ~gl in
      Float.abs (alpha' -. a0) < 1e-6 && Float.abs (beta' -. b0) < 1e-6)

(* --- offline DP sanity ------------------------------------------------------------ *)

let trace_events_gen =
  QCheck.Gen.(
    list_size (int_range 1 40)
      (map2
         (fun cpu is_write ->
           {
             Numa_system.System.at = 0.;
             cpu;
             tid = cpu;
             vpage = 0;
             kind = (if is_write then Access.Store else Access.Load);
             count = 8;
             where = Location.In_global;
             region = "p";
           })
         (int_bound 3) bool))

let prop_optimal_bounded =
  (* The DP optimum never beats the absolute lower bound (every reference
     local, zero protocol cost) and never loses to serving everything in
     global memory (a legal strategy whose cost it could always choose). *)
  QCheck.Test.make ~name:"offline DP between local and global bounds" ~count:150
    (QCheck.make trace_events_gen)
    (fun events ->
      let config = Config.ace ~n_cpus:4 () in
      let opt = Numa_trace.Optimal.page_optimal_ns ~config events in
      let cost_at where =
        List.fold_left
          (fun acc (e : Numa_system.System.access_event) ->
            acc
            +. Cost.references_ns config ~access:e.Numa_system.System.kind ~where
                 ~count:e.Numa_system.System.count)
          0. events
      in
      let lower = cost_at Location.Local_here in
      let global_strategy =
        (* zero-fill in global + every reference global + one pmap action *)
        cost_at Location.In_global
        +. Cost.page_zero_ns config ~dst:Location.In_global
        +. Cost.pmap_action_ns config
      in
      opt >= lower -. 1e-6 && opt <= global_strategy +. 1e-6)

(* --- layout properties -------------------------------------------------------- *)

let obj_gen =
  QCheck.Gen.(
    map3
      (fun words cls owner ->
        let sharing =
          match cls with
          | 0 -> Numa_vm.Region_attr.Declared_private
          | 1 -> Numa_vm.Region_attr.Declared_read_shared
          | _ -> Numa_vm.Region_attr.Declared_write_shared
        in
        (words + 1, sharing, owner))
      (int_bound 900) (int_bound 2) (int_bound 3))

let prop_segregated_never_mixes_classes =
  QCheck.Test.make ~name:"segregated layout never colocates sharing classes" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 20) obj_gen))
    (fun raw ->
      let objects =
        List.mapi
          (fun i (words, sharing, owner) ->
            Numa_lang.Layout.obj ~owner ~name:(Printf.sprintf "o%d" i) ~words ~sharing ())
          raw
      in
      let page_words = 512 in
      let plan = Numa_lang.Layout.segregated ~page_words objects in
      (* Map every word of every object to (region, page); no page may hold
         two different sharing classes, and private pages may not hold two
         different owners. *)
      let page_class = Hashtbl.create 64 in
      let ok = ref true in
      List.iter
        (fun (p : Numa_lang.Layout.placement) ->
          let o = p.Numa_lang.Layout.p_obj in
          let first = p.Numa_lang.Layout.p_offset_words / page_words in
          let last = (p.Numa_lang.Layout.p_offset_words + o.Numa_lang.Layout.o_words - 1) / page_words in
          for pg = first to last do
            let key = (p.Numa_lang.Layout.p_region, pg) in
            let cls = (o.Numa_lang.Layout.o_sharing, o.Numa_lang.Layout.o_owner) in
            let cls =
              (* Only private pages are owner-distinguished. *)
              match o.Numa_lang.Layout.o_sharing with
              | Numa_vm.Region_attr.Declared_private -> cls
              | Numa_vm.Region_attr.Declared_read_shared
              | Numa_vm.Region_attr.Declared_write_shared ->
                  (o.Numa_lang.Layout.o_sharing, None)
            in
            match Hashtbl.find_opt page_class key with
            | None -> Hashtbl.replace page_class key cls
            | Some existing -> if existing <> cls then ok := false
          done)
        plan.Numa_lang.Layout.placements;
      !ok)

(* --- DP monotonicity ------------------------------------------------------------ *)

let prop_optimal_monotone_in_events =
  QCheck.Test.make ~name:"offline DP cost is monotone in the event list" ~count:100
    (QCheck.make trace_events_gen)
    (fun events ->
      let config = Config.ace ~n_cpus:4 () in
      let costs =
        List.mapi
          (fun i _ ->
            let prefix = List.filteri (fun j _ -> j <= i) events in
            Numa_trace.Optimal.page_optimal_ns ~config prefix)
          events
      in
      let rec non_decreasing = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-6 && non_decreasing rest
        | [ _ ] | [] -> true
      in
      non_decreasing costs)

(* --- replay determinism ------------------------------------------------------------ *)

let prop_replay_deterministic =
  QCheck.Test.make ~name:"trace replay is deterministic" ~count:30
    QCheck.(pair (int_bound 1000) (int_range 2 4))
    (fun (seed, nthreads) ->
      let module System = Numa_system.System in
      let module Api = Numa_sim.Api in
      let config = Config.ace ~n_cpus:nthreads ~local_pages_per_cpu:32 ~global_pages:64 () in
      let sys = System.create ~config () in
      let buffer = Numa_trace.Trace_buffer.create () in
      Numa_trace.Trace_buffer.attach buffer sys;
      let data =
        System.alloc_region sys ~name:"d" ~kind:Numa_vm.Region_attr.Data
          ~sharing:Numa_vm.Region_attr.Declared_write_shared ~pages:2 ()
      in
      for i = 0 to nthreads - 1 do
        ignore
          (System.spawn sys ~cpu:i ~name:(string_of_int i) (fun ~stack_vpage:_ ->
               for r = 1 to 8 do
                 Api.write ~count:((seed mod 7) + r) (data.System.base_vpage + (r mod 2));
                 Api.compute 1e4
               done))
      done;
      ignore (System.run sys);
      let run () =
        Numa_trace.Replay.replay ~config ~policy:(System.Move_limit { threshold = 2 }) buffer
      in
      run () = run ())

(* --- request conservation under random resilience configs ------------------------- *)

(* Whatever mix of deadline/retry/hedge/breaker is armed and whatever the
   machine does underneath, every arrived request must resolve to exactly
   one of {in-deadline, timed-out, shed} — the ledger's sweep runs under
   paranoid mode and its findings land in the report. *)
let prop_resilience_conserves_requests =
  let module R = Numa_apps.Resilience in
  let module Runner = Numa_metrics.Runner in
  let module Report = Numa_system.Report in
  let gen =
    let open QCheck.Gen in
    let retry =
      oneof
        [
          return None;
          map2
            (fun attempts jitter ->
              Some
                {
                  R.max_attempts = attempts;
                  base_backoff_ns = 0.2e6;
                  max_backoff_ns = 2e6;
                  jitter;
                })
            (int_range 1 4) (float_bound_inclusive 1.0);
        ]
    in
    let hedge =
      oneof
        [ return None; map (fun f -> Some { R.factor = f }) (float_range 0.5 2.) ]
    in
    let breaker =
      oneof
        [
          return None;
          map (fun n -> Some { R.failures = n; cooldown_ns = 5e6 }) (int_range 2 8);
        ]
    in
    let plan =
      oneofl
        [
          "";
          "node-offline:1@110,node-online:1@160";
          "node-flap:1:30@110..170";
          "frame-squeeze:1:0@0";
        ]
    in
    let deadline = oneofl [ 800; 1_500; 3_000 ] in
    let topology = oneofl [ "ace"; "multi-socket" ] in
    tup6 deadline retry hedge breaker plan topology
  in
  let print (d, r, h, b, p, topo) =
    Printf.sprintf "%s faults=%S topology=%s"
      (R.to_string (R.make ~deadline_us:d ?retry:r ?hedge:h ?breaker:b ()))
      p topo
  in
  QCheck.Test.make ~name:"resilient serve conserves requests under chaos" ~count:8
    (QCheck.make ~print gen)
    (fun (deadline_us, retry, hedge, breaker, plan, topology) ->
      let faults =
        match Numa_faults.Plan.of_string plan with
        | Ok p -> p
        | Error e -> QCheck.Test.fail_reportf "plan %S: %s" plan e
      in
      let config_tweak c =
        match Config.of_topology_name ~n_cpus:c.Config.n_cpus topology with
        | Some c -> c
        | None -> QCheck.Test.fail_reportf "unknown topology %S" topology
      in
      let spec =
        {
          Runner.default_spec with
          Runner.scale = 0.02;
          n_cpus = 4;
          nthreads = 4;
          paranoid = true;
          faults;
          config_tweak;
        }
      in
      let cfg = R.make ~deadline_us ?retry ?hedge ?breaker () in
      let app =
        Numa_apps.Serve.make
          ~arrival:(Numa_util.Dist.arrival ~rate_per_s:11_000. ~burst:1. ())
          ~resilience:cfg ()
      in
      let r = Runner.run app spec in
      let res =
        match r.Report.resilience with
        | Some res -> res
        | None -> QCheck.Test.fail_reportf "no resilience section"
      in
      if res.Report.conservation_violations <> 0 then
        QCheck.Test.fail_reportf "%d conservation violations"
          res.Report.conservation_violations;
      if
        res.Report.arrived
        <> res.Report.served_in_deadline + res.Report.timed_out + res.Report.shed
      then
        QCheck.Test.fail_reportf "outcomes do not partition: %d <> %d + %d + %d"
          res.Report.arrived res.Report.served_in_deadline res.Report.timed_out
          res.Report.shed;
      (match r.Report.robustness with
      | Some rb when rb.Report.invariant_violations <> 0 ->
          QCheck.Test.fail_reportf "%d invariant violations"
            rb.Report.invariant_violations
      | Some _ | None -> ());
      true)

let suite =
  [
    qcheck prop_coherence_move_limit;
    qcheck prop_coherence_all_global;
    qcheck prop_coherence_never_pin;
    qcheck prop_coherence_random_policy;
    qcheck prop_system_coherence;
    qcheck prop_app_policy_topology_coherent;
    qcheck prop_model_roundtrip;
    qcheck prop_optimal_bounded;
    qcheck prop_segregated_never_mixes_classes;
    qcheck prop_optimal_monotone_in_events;
    qcheck prop_replay_deterministic;
    qcheck prop_resilience_conserves_requests;
  ]
