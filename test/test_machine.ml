(* Unit tests for the machine model: configuration, cost model, frame
   table, MMU. *)

open Numa_machine

let small_config () = Config.ace ~n_cpus:4 ~local_pages_per_cpu:8 ~global_pages:32 ()

(* --- config ------------------------------------------------------------- *)

let test_ace_defaults () =
  let c = Config.ace () in
  Alcotest.(check int) "7 CPUs (Table 4 machine)" 7 c.Config.n_cpus;
  Alcotest.(check int) "2 KB pages" 2048 (Config.page_size_bytes c);
  Alcotest.(check (float 1e-9)) "local fetch 0.65us" 650. c.Config.local_fetch_ns;
  Alcotest.(check (float 1e-9)) "global store 1.4us" 1400. c.Config.global_store_ns

let test_gl_ratios () =
  let c = Config.ace () in
  (* Section 2.2: 2.3x slower on fetches, ~2x at 45% stores. *)
  Alcotest.(check (float 0.05)) "fetch ratio 2.3" 2.31
    (Config.global_to_local_fetch_ratio c);
  Alcotest.(check (float 0.05)) "mixed ratio ~2" 1.98
    (Config.global_to_local_ratio c ~store_fraction:0.45)

let test_butterfly_preset () =
  let c = Config.butterfly_like () in
  Alcotest.(check bool) "valid" true (Result.is_ok (Config.validate c));
  Alcotest.(check (float 1e-9)) "global = remote fetch" c.Config.remote_fetch_ns
    c.Config.global_fetch_ns;
  Alcotest.(check bool) "steeper G/L than the ACE" true
    (Config.global_to_local_fetch_ratio c > Config.global_to_local_fetch_ratio (Config.ace ()))

let test_config_validation () =
  let ok = Config.validate (Config.ace ()) in
  Alcotest.(check bool) "ace is valid" true (Result.is_ok ok);
  let bad = { (Config.ace ()) with Config.n_cpus = 0 } in
  Alcotest.(check bool) "0 cpus invalid" true (Result.is_error (Config.validate bad));
  let uma =
    { (Config.ace ()) with Config.global_fetch_ns = 100.; global_store_ns = 100. }
  in
  Alcotest.(check bool) "global faster than local rejected" true
    (Result.is_error (Config.validate uma))

(* --- cost model ---------------------------------------------------------- *)

let test_reference_costs () =
  let c = Config.ace () in
  let r ~access ~where = Cost.reference_ns c ~access ~where in
  Alcotest.(check (float 1e-9)) "local load" 650. (r ~access:Access.Load ~where:Location.Local_here);
  Alcotest.(check (float 1e-9)) "local store" 840. (r ~access:Access.Store ~where:Location.Local_here);
  Alcotest.(check (float 1e-9)) "global load" 1500. (r ~access:Access.Load ~where:Location.In_global);
  Alcotest.(check (float 1e-9)) "global store" 1400. (r ~access:Access.Store ~where:Location.In_global);
  Alcotest.(check (float 1e-9)) "batch of 10" 6500.
    (Cost.references_ns c ~access:Access.Load ~where:Location.Local_here ~count:10)

let test_page_copy_costs () =
  let c = Config.ace () in
  (* 512 words x (global fetch + local store). *)
  Alcotest.(check (float 1e-6)) "copy in" (512. *. (1500. +. 840.))
    (Cost.page_copy_ns c ~src:Location.In_global ~dst:Location.Local_here);
  Alcotest.(check (float 1e-6)) "sync out" (512. *. (650. +. 1400.))
    (Cost.page_copy_ns c ~src:Location.Local_here ~dst:Location.In_global);
  Alcotest.(check (float 1e-6)) "zero local" (512. *. 840.)
    (Cost.page_zero_ns c ~dst:Location.Local_here)

let test_location_classification () =
  Alcotest.(check bool) "own local" true
    (Location.where_from ~cpu:2 (Location.Local 2) = Location.Local_here);
  Alcotest.(check bool) "other local is remote" true
    (Location.where_from ~cpu:2 (Location.Local 3) = Location.Remote_local);
  Alcotest.(check bool) "global" true
    (Location.where_from ~cpu:2 Location.Global = Location.In_global)

let test_prot_lattice () =
  Alcotest.(check bool) "ro allows load" true (Prot.allows Prot.Read_only Access.Load);
  Alcotest.(check bool) "ro blocks store" false (Prot.allows Prot.Read_only Access.Store);
  Alcotest.(check bool) "rw allows store" true (Prot.allows Prot.Read_write Access.Store);
  Alcotest.(check bool) "none blocks load" false (Prot.allows Prot.No_access Access.Load);
  Alcotest.(check bool) "min" true (Prot.min Prot.Read_write Prot.Read_only = Prot.Read_only);
  Alcotest.(check bool) "max" true (Prot.max Prot.No_access Prot.Read_only = Prot.Read_only);
  Alcotest.(check bool) "of_access store" true (Prot.of_access Access.Store = Prot.Read_write)

(* --- cost sink -------------------------------------------------------------- *)

let test_cost_sink () =
  let s = Cost_sink.create ~n_cpus:2 in
  Cost_sink.charge s ~cpu:0 100.;
  Cost_sink.charge s ~cpu:0 50.;
  Cost_sink.charge s ~cpu:1 10.;
  Alcotest.(check (float 1e-9)) "pending" 150. (Cost_sink.pending s ~cpu:0);
  Alcotest.(check (float 1e-9)) "drain" 150. (Cost_sink.drain s ~cpu:0);
  Alcotest.(check (float 1e-9)) "drained" 0. (Cost_sink.pending s ~cpu:0);
  Alcotest.(check (float 1e-9)) "cumulative survives drain" 150.
    (Cost_sink.total_charged s ~cpu:0);
  Alcotest.(check (float 1e-9)) "grand total" 160. (Cost_sink.grand_total s);
  Alcotest.check_raises "negative charge"
    (Invalid_argument "Cost_sink.charge: negative charge") (fun () ->
      Cost_sink.charge s ~cpu:0 (-1.))

(* --- frame table --------------------------------------------------------------- *)

let test_frame_alloc_exhaustion () =
  let t = Frame_table.create (small_config ()) in
  let frames = ref [] in
  for _ = 1 to 8 do
    match Frame_table.alloc_local t ~node:1 with
    | Some f -> frames := f :: !frames
    | None -> Alcotest.fail "pool exhausted early"
  done;
  Alcotest.(check int) "in use" 8 (Frame_table.local_in_use t ~node:1);
  Alcotest.(check bool) "exhausted" true (Frame_table.alloc_local t ~node:1 = None);
  Alcotest.(check bool) "other node unaffected" true
    (Frame_table.alloc_local t ~node:0 <> None);
  List.iter (Frame_table.free_local t) !frames;
  Alcotest.(check int) "all freed" 0 (Frame_table.local_in_use t ~node:1)

let test_frame_double_free () =
  let t = Frame_table.create (small_config ()) in
  let f = Option.get (Frame_table.alloc_local t ~node:0) in
  Frame_table.free_local t f;
  (* The message names the frame and its node: a double free is a protocol
     bug, and the ids are what you need to find it in a trace. *)
  Alcotest.check_raises "double free"
    (Invalid_argument
       (Printf.sprintf "Frame_table.free_local: double free of frame %d on node %d"
          f.Frame_table.id 0))
    (fun () -> Frame_table.free_local t f)

let test_frame_double_free_offline () =
  let t = Frame_table.create (small_config ()) in
  let f = Option.get (Frame_table.alloc_local t ~node:1) in
  Frame_table.free_local t f;
  (* Taking the node offline must not silence the error path. *)
  Frame_table.set_node_online t ~node:1 false;
  Alcotest.check_raises "double free while offline"
    (Invalid_argument
       (Printf.sprintf "Frame_table.free_local: double free of frame %d on node %d"
          f.Frame_table.id 1))
    (fun () -> Frame_table.free_local t f)

let test_frame_content_transfer () =
  let t = Frame_table.create (small_config ()) in
  Frame_table.write_global t ~lpage:3 77;
  let f = Option.get (Frame_table.alloc_local t ~node:0) in
  Frame_table.copy_global_to_local t ~lpage:3 f;
  Alcotest.(check int) "copied in" 77 (Frame_table.read_local f);
  Frame_table.write_local t f 88;
  Frame_table.copy_local_to_global t f ~lpage:3;
  Alcotest.(check int) "synced out" 88 (Frame_table.read_global t ~lpage:3);
  Frame_table.zero_global t ~lpage:3;
  Alcotest.(check int) "zeroed" 0 (Frame_table.read_global t ~lpage:3)

let test_frame_alloc_resets_cell () =
  let t = Frame_table.create (small_config ()) in
  let f = Option.get (Frame_table.alloc_local t ~node:0) in
  Frame_table.write_local t f 42;
  Frame_table.free_local t f;
  let f2 = Option.get (Frame_table.alloc_local t ~node:0) in
  Alcotest.(check int) "fresh frame zeroed" 0 (Frame_table.read_local f2)

(* --- mmu ----------------------------------------------------------------------- *)

let test_mmu_enter_lookup_remove () =
  let t = Mmu.create (small_config ()) in
  Mmu.enter t ~pmap:0 ~cpu:1 ~vpage:10 ~lpage:5 ~prot:Prot.Read_only
    ~phys:(Mmu.Global_frame 5);
  (match Mmu.lookup t ~pmap:0 ~cpu:1 ~vpage:10 with
  | Some e ->
      Alcotest.(check int) "lpage" 5 e.Mmu.lpage;
      Alcotest.(check bool) "prot" true (e.Mmu.prot = Prot.Read_only)
  | None -> Alcotest.fail "mapping missing");
  Alcotest.(check bool) "other cpu not mapped" true
    (Mmu.lookup t ~pmap:0 ~cpu:0 ~vpage:10 = None);
  Mmu.remove t ~pmap:0 ~cpu:1 ~vpage:10;
  Alcotest.(check bool) "removed" true (Mmu.lookup t ~pmap:0 ~cpu:1 ~vpage:10 = None);
  Alcotest.(check int) "no mappings" 0 (Mmu.n_mappings t)

let test_mmu_reverse_index () =
  let t = Mmu.create (small_config ()) in
  for cpu = 0 to 3 do
    Mmu.enter t ~pmap:0 ~cpu ~vpage:7 ~lpage:9 ~prot:Prot.Read_only
      ~phys:(Mmu.Global_frame 9)
  done;
  Mmu.enter t ~pmap:1 ~cpu:0 ~vpage:3 ~lpage:9 ~prot:Prot.Read_only
    ~phys:(Mmu.Global_frame 9);
  Alcotest.(check int) "5 mappings of lpage 9" 5
    (List.length (Mmu.entries_of_lpage t ~lpage:9));
  Alcotest.(check int) "pmap 1 has 1" 1 (List.length (Mmu.entries_of_pmap t ~pmap:1))

let test_mmu_replace_updates_reverse () =
  let t = Mmu.create (small_config ()) in
  Mmu.enter t ~pmap:0 ~cpu:0 ~vpage:1 ~lpage:2 ~prot:Prot.Read_only
    ~phys:(Mmu.Global_frame 2);
  (* Re-enter the same (pmap, cpu, vpage) against a different lpage. *)
  Mmu.enter t ~pmap:0 ~cpu:0 ~vpage:1 ~lpage:6 ~prot:Prot.Read_write
    ~phys:(Mmu.Global_frame 6);
  Alcotest.(check int) "old lpage unindexed" 0
    (List.length (Mmu.entries_of_lpage t ~lpage:2));
  Alcotest.(check int) "new lpage indexed" 1
    (List.length (Mmu.entries_of_lpage t ~lpage:6));
  Alcotest.(check int) "single mapping" 1 (Mmu.n_mappings t)

let test_mmu_remove_range () =
  let t = Mmu.create (small_config ()) in
  for v = 0 to 9 do
    Mmu.enter t ~pmap:0 ~cpu:0 ~vpage:v ~lpage:v ~prot:Prot.Read_write
      ~phys:(Mmu.Global_frame v)
  done;
  Mmu.remove_range t ~pmap:0 ~vpage:2 ~n:5;
  Alcotest.(check int) "5 remain" 5 (Mmu.n_mappings t);
  Alcotest.(check bool) "edge below kept" true (Mmu.lookup t ~pmap:0 ~cpu:0 ~vpage:1 <> None);
  Alcotest.(check bool) "range start gone" true (Mmu.lookup t ~pmap:0 ~cpu:0 ~vpage:2 = None);
  Alcotest.(check bool) "range end gone" true (Mmu.lookup t ~pmap:0 ~cpu:0 ~vpage:6 = None);
  Alcotest.(check bool) "edge above kept" true (Mmu.lookup t ~pmap:0 ~cpu:0 ~vpage:7 <> None)

let test_mmu_phys_location () =
  let ft = Frame_table.create (small_config ()) in
  let f = Option.get (Frame_table.alloc_local ft ~node:2) in
  Alcotest.(check bool) "frame local to node" true
    (Mmu.phys_location ~cpu:2 (Mmu.Frame f) = Location.Local_here);
  Alcotest.(check bool) "frame remote otherwise" true
    (Mmu.phys_location ~cpu:0 (Mmu.Frame f) = Location.Remote_local);
  Alcotest.(check bool) "global frame" true
    (Mmu.phys_location ~cpu:0 (Mmu.Global_frame 1) = Location.In_global)

(* --- software TLB ------------------------------------------------------------------- *)

let test_tlb_hit_miss_counters () =
  let t : int Tlb.t = Tlb.create ~slots:16 () in
  Alcotest.(check bool) "cold lookup misses" true (Tlb.lookup t ~pmap:0 ~vpage:3 = None);
  Tlb.insert t ~pmap:0 ~vpage:3 42;
  (match Tlb.lookup t ~pmap:0 ~vpage:3 with
  | Some 42 -> ()
  | Some _ -> Alcotest.fail "wrong payload"
  | None -> Alcotest.fail "hit expected after insert");
  Alcotest.(check int) "one hit" 1 (Tlb.hits t);
  Alcotest.(check int) "one miss" 1 (Tlb.misses t);
  (* A different pmap mapping the same vpage is a distinct translation. *)
  Alcotest.(check bool) "other pmap misses" true (Tlb.lookup t ~pmap:1 ~vpage:3 = None)

let test_tlb_invalidate () =
  let t : int Tlb.t = Tlb.create ~slots:16 () in
  Tlb.insert t ~pmap:0 ~vpage:5 7;
  Alcotest.(check bool) "shootdown of another page is a no-op" false
    (Tlb.invalidate t ~pmap:0 ~vpage:6);
  Alcotest.(check bool) "precise shootdown drops the entry" true
    (Tlb.invalidate t ~pmap:0 ~vpage:5);
  Alcotest.(check bool) "entry gone" true (Tlb.lookup t ~pmap:0 ~vpage:5 = None);
  Alcotest.(check int) "one shootdown counted" 1 (Tlb.shootdowns t);
  Alcotest.(check bool) "double shootdown is a no-op" false
    (Tlb.invalidate t ~pmap:0 ~vpage:5);
  Alcotest.(check int) "still one shootdown" 1 (Tlb.shootdowns t)

let test_tlb_conflict_eviction () =
  let t : int Tlb.t = Tlb.create ~slots:16 () in
  (* Same pmap, vpages congruent mod the slot count: direct-mapped conflict. *)
  Tlb.insert t ~pmap:0 ~vpage:1 10;
  Tlb.insert t ~pmap:0 ~vpage:(1 + Tlb.size t) 20;
  Alcotest.(check bool) "conflicting fill evicted the old entry" true
    (Tlb.lookup t ~pmap:0 ~vpage:1 = None);
  (match Tlb.lookup t ~pmap:0 ~vpage:(1 + Tlb.size t) with
  | Some 20 -> ()
  | _ -> Alcotest.fail "new entry survives");
  Alcotest.(check int) "eviction is not a shootdown" 0 (Tlb.shootdowns t)

let test_tlb_flush_and_sizing () =
  let t : int Tlb.t = Tlb.create ~slots:20 () in
  Alcotest.(check int) "slots round up to a power of two" 32 (Tlb.size t);
  for v = 0 to 9 do
    Tlb.insert t ~pmap:0 ~vpage:v v
  done;
  Tlb.flush t;
  for v = 0 to 9 do
    Alcotest.(check bool) "flushed" true (Tlb.lookup t ~pmap:0 ~vpage:v = None)
  done;
  Alcotest.(check int) "flush is not a shootdown" 0 (Tlb.shootdowns t)

(* --- bus ---------------------------------------------------------------------------- *)

let test_bus_disabled_by_default () =
  let bus = Bus.create (Config.ace ()) in
  Alcotest.(check bool) "disabled" false (Bus.enabled bus);
  Alcotest.(check (float 0.)) "no delay" 0. (Bus.delay_ns bus ~now:0. ~words:1_000_000);
  Alcotest.(check int) "no accounting when disabled" 0 (Bus.total_words bus)

let test_bus_under_capacity_is_free () =
  let config = { (Config.ace ()) with Config.bus_words_per_ns = 0.02 } in
  let bus = Bus.create config in
  (* One word every 100 ns = 0.01 words/ns, half the capacity. *)
  for i = 0 to 99 do
    let d = Bus.delay_ns bus ~now:(float_of_int (i * 100)) ~words:1 in
    Alcotest.(check bool) "no queueing under capacity" true (d <= 50.)
  done

let test_bus_overload_queues () =
  let config = { (Config.ace ()) with Config.bus_words_per_ns = 0.01 } in
  let bus = Bus.create config in
  (* A 1000-word burst at t=0 takes 100_000 ns to drain; a second burst
     right behind it must wait for the first. *)
  let d1 = Bus.delay_ns bus ~now:0. ~words:1000 in
  Alcotest.(check (float 1e-9)) "first burst unqueued" 0. d1;
  let d2 = Bus.delay_ns bus ~now:10. ~words:1000 in
  Alcotest.(check (float 1.)) "second burst waits for the first" 99_990. d2;
  Alcotest.(check int) "traffic accounted" 2000 (Bus.total_words bus);
  Alcotest.(check bool) "delay accounted" true (Bus.total_delay_ns bus > 0.)

let test_bus_idle_gap_drains () =
  let config = { (Config.ace ()) with Config.bus_words_per_ns = 0.01 } in
  let bus = Bus.create config in
  ignore (Bus.delay_ns bus ~now:0. ~words:1000);
  (* After the backlog has fully drained, a new burst is unqueued. *)
  let d = Bus.delay_ns bus ~now:200_000. ~words:1000 in
  Alcotest.(check (float 1e-9)) "drained" 0. d

(* --- topology ---------------------------------------------------------------------- *)

let test_topology_render () =
  let s = Topology.render (Config.ace ()) in
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions IPC bus" true (has "IPC");
  Alcotest.(check bool) "mentions global memory" true (has "global memory");
  Alcotest.(check bool) "has timings" true (has "0.65")

let suite =
  [
    Alcotest.test_case "ace defaults" `Quick test_ace_defaults;
    Alcotest.test_case "G/L ratios" `Quick test_gl_ratios;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "butterfly preset" `Quick test_butterfly_preset;
    Alcotest.test_case "reference costs" `Quick test_reference_costs;
    Alcotest.test_case "page copy costs" `Quick test_page_copy_costs;
    Alcotest.test_case "location classification" `Quick test_location_classification;
    Alcotest.test_case "protection lattice" `Quick test_prot_lattice;
    Alcotest.test_case "cost sink" `Quick test_cost_sink;
    Alcotest.test_case "frame alloc/exhaustion" `Quick test_frame_alloc_exhaustion;
    Alcotest.test_case "frame double free" `Quick test_frame_double_free;
    Alcotest.test_case "frame double free offline" `Quick test_frame_double_free_offline;
    Alcotest.test_case "frame content transfer" `Quick test_frame_content_transfer;
    Alcotest.test_case "frame cell reset on alloc" `Quick test_frame_alloc_resets_cell;
    Alcotest.test_case "mmu enter/lookup/remove" `Quick test_mmu_enter_lookup_remove;
    Alcotest.test_case "mmu reverse index" `Quick test_mmu_reverse_index;
    Alcotest.test_case "mmu replace updates reverse" `Quick test_mmu_replace_updates_reverse;
    Alcotest.test_case "mmu remove range" `Quick test_mmu_remove_range;
    Alcotest.test_case "mmu phys location" `Quick test_mmu_phys_location;
    Alcotest.test_case "tlb hit/miss counters" `Quick test_tlb_hit_miss_counters;
    Alcotest.test_case "tlb precise shootdown" `Quick test_tlb_invalidate;
    Alcotest.test_case "tlb conflict eviction" `Quick test_tlb_conflict_eviction;
    Alcotest.test_case "tlb flush and sizing" `Quick test_tlb_flush_and_sizing;
    Alcotest.test_case "bus disabled by default" `Quick test_bus_disabled_by_default;
    Alcotest.test_case "bus under capacity" `Quick test_bus_under_capacity_is_free;
    Alcotest.test_case "bus overload queues" `Quick test_bus_overload_queues;
    Alcotest.test_case "bus drains when idle" `Quick test_bus_idle_gap_drains;
    Alcotest.test_case "topology render" `Quick test_topology_render;
  ]
