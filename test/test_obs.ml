(* Tests for the observability library: the JSON emitter and parser-less
   validator, the event hub, the Chrome trace exporter, the time-series
   sampler, the per-page audit, and the zero-overhead guarantee (an
   observed run reports exactly what an unobserved run reports). *)

open Numa_machine
module System = Numa_system.System
module Report = Numa_system.Report
module Api = Numa_sim.Api
module Region_attr = Numa_vm.Region_attr
module Json = Numa_obs.Json
module Hub = Numa_obs.Hub
module Event = Numa_obs.Event
module Chrome_trace = Numa_obs.Chrome_trace
module Timeseries = Numa_obs.Timeseries
module Page_audit = Numa_obs.Page_audit

let small_config () = Config.ace ~n_cpus:4 ~local_pages_per_cpu:64 ~global_pages:128 ()

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

(* A two-CPU ping-pong over one writably shared page: ownership moves every
   round, so the default move-limit policy pins the page mid-run. *)
let ping_pong_system ?obs () =
  let sys = System.create ?obs ~config:(small_config ()) () in
  let data =
    System.alloc_region sys ~name:"shared" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_write_shared ~pages:1 ()
  in
  let barrier = System.make_barrier sys ~name:"b" ~parties:2 in
  for cpu = 0 to 1 do
    ignore
      (System.spawn sys ~cpu ~name:(Printf.sprintf "t%d" cpu) (fun ~stack_vpage:_ ->
           for _round = 1 to 8 do
             Api.write ~count:16 data.System.base_vpage;
             Api.barrier barrier
           done))
  done;
  (sys, data)

(* --- Json emitter -------------------------------------------------------- *)

let test_json_to_string () =
  let j =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Bool true; Json.Null ]);
        ("s", Json.String "x\"y\nz");
        ("f", Json.Float 1.5);
      ]
  in
  Alcotest.(check string) "rendering"
    "{\"a\":1,\"b\":[true,null],\"s\":\"x\\\"y\\nz\",\"f\":1.5}" (Json.to_string j)

let test_json_floats () =
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Json.to_string (Json.Float Float.infinity));
  Alcotest.(check string) "integral float keeps a decimal" "2.0"
    (Json.to_string (Json.Float 2.))

let test_json_validator_accepts_own_output () =
  let j =
    Json.Obj
      [
        ("nested", Json.Obj [ ("list", Json.List [ Json.Obj []; Json.List [] ]) ]);
        ("tricky", Json.String "braces { } [ ] and a quote \" inside");
      ]
  in
  let s = Json.to_string j in
  match Json.check_structure s with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "rejected own output: %s" msg

let test_json_validator_rejects_broken () =
  (match Json.check_structure "{\"a\":[1,2}" with
  | Ok () -> Alcotest.fail "accepted mismatched brackets"
  | Error _ -> ());
  (match Json.check_structure "{\"a\":\"unterminated}" with
  | Ok () -> Alcotest.fail "accepted unterminated string"
  | Error _ -> ());
  match Json.check_structure "{\"a\":1}]" with
  | Ok () -> Alcotest.fail "accepted stray close"
  | Error _ -> ()

let test_json_keys () =
  let s =
    Json.to_string
      (Json.Obj
         [ ("alpha", Json.Int 1); ("two words", Json.String "not a key: \"fake\"") ])
  in
  Alcotest.(check bool) "present" true (Json.has_key s ~key:"alpha");
  Alcotest.(check bool) "absent" false (Json.has_key s ~key:"gamma");
  (match Json.required_keys s ~keys:[ "alpha"; "two words" ] with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "keys reported missing: %s" msg);
  match Json.required_keys s ~keys:[ "alpha"; "gamma" ] with
  | Ok () -> Alcotest.fail "missed a missing key"
  | Error _ -> ()

(* --- the hub -------------------------------------------------------------- *)

let test_hub_attach_detach () =
  let h = Hub.create () in
  Alcotest.(check bool) "no sinks: disabled" false (Hub.enabled h);
  let seen = ref [] in
  Hub.attach h ~name:"probe" (fun ~ts ev -> seen := (ts, ev) :: !seen);
  Alcotest.(check bool) "sink attached: enabled" true (Hub.enabled h);
  Hub.set_clock h (fun () -> 42.);
  Hub.emit h (Event.Page_unpin { lpage = 3 });
  (match !seen with
  | [ (ts, Event.Page_unpin { lpage = 3 }) ] ->
      Alcotest.(check (float 0.)) "stamped with the clock" 42. ts
  | _ -> Alcotest.fail "event not delivered exactly once");
  Hub.detach h ~name:"probe";
  Alcotest.(check bool) "detached: disabled" false (Hub.enabled h);
  Hub.emit h (Event.Page_unpin { lpage = 4 });
  Alcotest.(check int) "no delivery after detach" 1 (List.length !seen)

(* --- Chrome trace export -------------------------------------------------- *)

let parmult_traced () =
  let obs = Hub.create () in
  let tr = Chrome_trace.create ~n_cpus:4 in
  Chrome_trace.attach tr obs;
  let sys = System.create ~obs ~config:(Config.ace ~n_cpus:4 ()) () in
  let app =
    match Numa_apps.Registry.find "parmult" with
    | Some app -> app
    | None -> Alcotest.fail "parmult app missing from registry"
  in
  app.Numa_apps.App_sig.setup sys
    { Numa_apps.App_sig.nthreads = 4; scale = 0.1; seed = 42L };
  ignore (System.run sys);
  tr

let test_chrome_trace_is_valid_json () =
  let tr = parmult_traced () in
  Alcotest.(check bool) "recorded events" true (Chrome_trace.length tr > 0);
  let s = Json.to_string (Chrome_trace.to_json tr) in
  (match Json.check_structure s with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "trace JSON structurally invalid: %s" msg);
  match Json.required_keys s ~keys:[ "traceEvents"; "ph"; "ts"; "pid"; "tid" ] with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "trace JSON incomplete: %s" msg

let test_chrome_trace_lane_timestamps_monotone () =
  let tr = parmult_traced () in
  let last = Hashtbl.create 8 in
  let ok = ref true in
  Chrome_trace.iter tr (fun ~ts ~lane _ev ->
      let prev =
        match Hashtbl.find_opt last lane with Some v -> v | None -> neg_infinity
      in
      if ts < prev then ok := false;
      Hashtbl.replace last lane ts);
  Alcotest.(check bool) "every lane is a monotone timeline" true !ok;
  Alcotest.(check int) "protocol lane beyond the CPUs" 4 (Chrome_trace.protocol_lane tr);
  Alcotest.(check bool) "protocol lane used" true (Hashtbl.mem last 4)

let test_hub_clock_monotone_under_bus_contention () =
  (* The engine's virtual clock must never run backwards, even when bus
     queueing pushes a chunk's start time past an earlier thread's resume
     point — the regression the vnow clamp in [Engine.turn] guards. Every
     hub timestamp is stamped from that clock, so a single probe checks
     the whole run. *)
  let config =
    { (small_config ()) with Config.bus_words_per_ns = 0.005 (* 20 MB/s: saturated *) }
  in
  let obs = Hub.create () in
  let last = ref neg_infinity and regressions = ref 0 and n = ref 0 in
  Hub.attach obs ~name:"mono" (fun ~ts _ev ->
      if ts < !last then incr regressions;
      last := ts;
      incr n);
  let sys = System.create ~obs ~config () in
  let app = Option.get (Numa_apps.Registry.find "gfetch") in
  app.Numa_apps.App_sig.setup sys
    { Numa_apps.App_sig.nthreads = 4; scale = 0.05; seed = 42L };
  let report = System.run sys in
  Alcotest.(check bool) "bus actually queued" true (report.Report.bus_delay_ns > 0.);
  Alcotest.(check bool) "events observed" true (!n > 0);
  Alcotest.(check int) "virtual clock never regressed" 0 !regressions

(* --- lock release and TLB shootdown events ---------------------------------- *)

let test_lock_events_balanced () =
  let obs = Hub.create () in
  let acquired = ref 0 and released = ref 0 in
  Hub.attach obs ~name:"locks" (fun ~ts:_ ev ->
      match ev with
      | Event.Lock_acquired _ -> incr acquired
      | Event.Lock_released { lock_id = _; cpu; tid } ->
          Alcotest.(check bool) "release names a real cpu" true (cpu >= 0 && cpu < 4);
          Alcotest.(check bool) "release names a real tid" true (tid >= 0);
          incr released
      | _ -> ());
  let e =
    Numa_sim.Engine.create ~obs
      (Numa_sim.Engine.default_config ~n_cpus:4)
      ~memory:(Numa_sim.Memory_iface.flat (small_config ()))
      ~scheduler:Numa_sim.Engine.Affinity
  in
  let lock = Numa_sim.Engine.make_lock e ~vpage:0 in
  for cpu = 0 to 3 do
    ignore
      (Numa_sim.Engine.spawn e ~cpu ~name:(Printf.sprintf "t%d" cpu) (fun () ->
           for _ = 1 to 5 do
             Api.lock lock;
             Api.compute 10_000.;
             Api.unlock lock
           done))
  done;
  Numa_sim.Engine.run e;
  Alcotest.(check int) "20 acquisitions seen" 20 !acquired;
  Alcotest.(check int) "every acquisition has a matching release" !acquired !released

let test_tlb_shootdown_events_match_report () =
  let obs = Hub.create () in
  let events = ref 0 in
  Hub.attach obs ~name:"tlb" (fun ~ts:_ ev ->
      match ev with Event.Tlb_shootdown _ -> incr events | _ -> ());
  let sys, _ = ping_pong_system ~obs () in
  let report = System.run sys in
  Alcotest.(check bool) "the ping-pong shot down translations" true
    (report.Report.tlb_shootdowns > 0);
  Alcotest.(check int) "one event per counted shootdown" report.Report.tlb_shootdowns
    !events;
  Alcotest.(check bool) "fast path used" true (report.Report.tlb_hits > 0)

(* --- time series ----------------------------------------------------------- *)

let test_timeseries_rows_and_csv () =
  let obs = Hub.create () in
  let ts = Timeseries.create () in
  Timeseries.attach ts obs;
  let sys, _ = ping_pong_system ~obs () in
  ignore (System.run sys);
  let rows = Timeseries.rows ts in
  Alcotest.(check bool) "at least one epoch" true (rows <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) "alpha within [0,1]" true
        (r.Timeseries.alpha >= 0. && r.Timeseries.alpha <= 1.);
      Alcotest.(check int) "location counts partition refs" r.Timeseries.refs
        (r.Timeseries.local_refs + r.Timeseries.global_refs + r.Timeseries.remote_refs))
    rows;
  Alcotest.(check bool) "the ping-pong moved pages" true
    (List.fold_left (fun acc r -> acc + r.Timeseries.moves) 0 rows > 0);
  Alcotest.(check bool) "and pinned one" true
    (List.fold_left (fun acc r -> acc + r.Timeseries.pins) 0 rows > 0);
  let lines = String.split_on_char '\n' (String.trim (Timeseries.to_csv ts)) in
  Alcotest.(check int) "header plus one line per epoch"
    (1 + List.length rows)
    (List.length lines);
  Alcotest.(check string) "header row" Timeseries.csv_header (List.hd lines)

(* --- zero-overhead guarantee ----------------------------------------------- *)

let test_observed_run_reports_identically () =
  let run ~observe =
    let obs = Hub.create () in
    if observe then begin
      Chrome_trace.attach (Chrome_trace.create ~n_cpus:4) obs;
      Timeseries.attach (Timeseries.create ()) obs;
      Page_audit.attach (Page_audit.create ~lpage:0) obs
    end;
    let sys, _ = ping_pong_system ~obs () in
    System.run sys
  in
  let plain = run ~observe:false in
  let observed = run ~observe:true in
  Alcotest.(check string) "summary line identical" (Report.summary_line plain)
    (Report.summary_line observed);
  Alcotest.(check int) "event count identical" plain.Report.n_events
    observed.Report.n_events;
  Alcotest.(check (float 0.)) "user time identical" plain.Report.total_user_ns
    observed.Report.total_user_ns;
  Alcotest.(check (float 0.)) "system time identical" plain.Report.total_system_ns
    observed.Report.total_system_ns;
  Alcotest.(check int) "moves identical" plain.Report.numa_moves
    observed.Report.numa_moves

(* --- Json parser ---------------------------------------------------------- *)

let test_json_parse_roundtrip () =
  let doc =
    Json.Obj
      [
        ("int", Json.Int (-42));
        ("float", Json.Float 1.25);
        ("big", Json.Float 3.14159265358979);
        ("nan_becomes_null", Json.Float Float.nan);
        ("s", Json.String "quote \" slash \\ newline \n tab \t ctrl \x01 end");
        ("unicode", Json.String "caf\xc3\xa9");
        ("nested", Json.Obj [ ("l", Json.List [ Json.Bool true; Json.Null; Json.Obj [] ]) ]);
        ("empty_list", Json.List []);
      ]
  in
  let s = Json.to_string doc in
  match Json.parse s with
  | Error msg -> Alcotest.failf "own output does not parse: %s" msg
  | Ok parsed ->
      (* Non-finite floats were emitted as null, so the round trip is the
         document with that one substitution; bytes then fixpoint. *)
      Alcotest.(check string) "serialisation fixpoint" s (Json.to_string parsed);
      (match Json.member parsed "nan_becomes_null" with
      | Some Json.Null -> ()
      | _ -> Alcotest.fail "nan did not land as null");
      (match Json.member parsed "int" with
      | Some (Json.Int -42) -> ()
      | _ -> Alcotest.fail "integral literal did not parse as Int");
      (match Option.bind (Json.member parsed "float") Json.to_float with
      | Some f -> Alcotest.(check (float 1e-12)) "float value" 1.25 f
      | None -> Alcotest.fail "float member lost");
      (* Standard JSON the emitter never produces: \u escapes. *)
      match Json.parse "{\"u\": \"caf\\u00e9 \\u0041\"}" with
      | Error msg -> Alcotest.failf "unicode escape rejected: %s" msg
      | Ok j -> (
          match Json.member j "u" with
          | Some (Json.String u) -> Alcotest.(check string) "decoded" "caf\xc3\xa9 A" u
          | _ -> Alcotest.fail "unicode member lost")

let test_json_parse_rejects () =
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "parser accepted %S" bad
      | Error msg ->
          Alcotest.(check bool) "error mentions an offset" true
            (contains msg "offset" || contains msg "end of input"))
    [
      ""; "{"; "[1,2"; "{\"a\":}"; "{\"a\":1}]"; "tru"; "\"unterminated";
      "{\"a\" 1}"; "[1,,2]"; "nul"; "1.2.3";
    ];
  (match Json.load "/nonexistent/path/x.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a missing file succeeded");
  (* member/to_float on the wrong shapes answer None, not an exception. *)
  Alcotest.(check bool) "member on non-object" true
    (Json.member (Json.List []) "k" = None);
  Alcotest.(check bool) "to_float on string" true (Json.to_float (Json.String "1") = None)

(* --- per-page audit --------------------------------------------------------- *)

let test_page_audit_explains_pin () =
  (* Discovery run: learn which logical page backs the ping-ponged vpage
     (deterministic, but not knowable before any fault occurs). *)
  let sys0, data0 = ping_pong_system () in
  ignore (System.run sys0);
  let lpage =
    match System.lpage_of sys0 ~vpage:data0.System.base_vpage () with
    | Some l -> l
    | None -> Alcotest.fail "shared page never materialised"
  in
  (* Audited run of the identical workload. *)
  let obs = Hub.create () in
  let audit = Page_audit.create ~lpage in
  Page_audit.attach audit obs;
  let sys, _ = ping_pong_system ~obs () in
  let report = System.run sys in
  Alcotest.(check bool) "the policy pinned a page" true (report.Report.pins >= 1);
  (match Page_audit.pin_reason audit with
  | Some reason ->
      Alcotest.(check bool) "pin reason names the move-limit rule" true
        (contains reason "move-limit")
  | None -> Alcotest.fail "audit saw no pin event");
  let text = Page_audit.explain audit in
  Alcotest.(check bool) "timeline mentions page moves" true (contains text "moved");
  Alcotest.(check bool) "verdict says pinned" true (contains text "pinned");
  Alcotest.(check bool) "timeline has many entries" true
    (List.length (String.split_on_char '\n' text) > 5)

(* --- report JSON -------------------------------------------------------------- *)

let test_page_audit_fault_narrative () =
  (* A faulted run: the audited page's story must include the machine-wide
     fault events even though they carry no lpage, so the timeline explains
     why the protocol history changed course. *)
  let obs = Hub.create () in
  let audit = Page_audit.create ~lpage:0 in
  Page_audit.attach audit obs;
  let faults =
    match Numa_faults.Plan.of_string "node-offline:1@1" with
    | Ok p -> p
    | Error msg -> Alcotest.failf "bad plan: %s" msg
  in
  let config = Numa_machine.Config.ace ~n_cpus:4 () in
  let sys = System.create ~obs ~faults ~config () in
  let app = Option.get (Numa_apps.Registry.find "imatmult") in
  app.Numa_apps.App_sig.setup sys { Numa_apps.App_sig.nthreads = 4; scale = 0.03; seed = 42L };
  ignore (System.run sys);
  let text = Page_audit.explain audit in
  Alcotest.(check bool) "timeline narrates the node loss" true
    (contains text "offline")

let test_report_json_roundtrip () =
  let sys, _ = ping_pong_system () in
  let report = System.run sys in
  let s = Json.to_string (Report.to_json report) in
  (match Json.check_structure s with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "report JSON structurally invalid: %s" msg);
  (match
     Json.required_keys s
       ~keys:
         [
           "policy";
           "n_cpus";
           "total_user_ns";
           "refs_all";
           "refs_writable_data";
           "numa";
           "tlb";
           "pins";
           "placement";
           "bus_words";
         ]
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "report JSON incomplete: %s" msg);
  (* Counters the text report prints must round-trip into the JSON. *)
  Alcotest.(check bool) "moves round-trip" true
    (contains s (Printf.sprintf "\"moves\":%d" report.Report.numa_moves));
  Alcotest.(check bool) "pins round-trip" true
    (contains s (Printf.sprintf "\"pins\":%d" report.Report.pins));
  Alcotest.(check bool) "enters round-trip" true
    (contains s (Printf.sprintf "\"enters\":%d" report.Report.numa_enters));
  Alcotest.(check bool) "policy name round-trips" true
    (contains s (Printf.sprintf "\"policy\":%S" report.Report.policy_name))

let suite =
  [
    Alcotest.test_case "json rendering" `Quick test_json_to_string;
    Alcotest.test_case "json floats" `Quick test_json_floats;
    Alcotest.test_case "json validator accepts" `Quick
      test_json_validator_accepts_own_output;
    Alcotest.test_case "json validator rejects" `Quick test_json_validator_rejects_broken;
    Alcotest.test_case "json key checks" `Quick test_json_keys;
    Alcotest.test_case "hub attach/detach" `Quick test_hub_attach_detach;
    Alcotest.test_case "chrome trace valid json" `Quick test_chrome_trace_is_valid_json;
    Alcotest.test_case "chrome trace monotone lanes" `Quick
      test_chrome_trace_lane_timestamps_monotone;
    Alcotest.test_case "hub clock monotone under bus contention" `Quick
      test_hub_clock_monotone_under_bus_contention;
    Alcotest.test_case "lock acquire/release balanced" `Quick test_lock_events_balanced;
    Alcotest.test_case "tlb shootdown events match report" `Quick
      test_tlb_shootdown_events_match_report;
    Alcotest.test_case "timeseries rows and csv" `Quick test_timeseries_rows_and_csv;
    Alcotest.test_case "observed run identical" `Quick
      test_observed_run_reports_identically;
    Alcotest.test_case "page audit explains pin" `Quick test_page_audit_explains_pin;
    Alcotest.test_case "page audit narrates faults" `Quick
      test_page_audit_fault_narrative;
    Alcotest.test_case "json parse round-trip" `Quick test_json_parse_roundtrip;
    Alcotest.test_case "json parse rejects garbage" `Quick test_json_parse_rejects;
    Alcotest.test_case "report json round-trip" `Quick test_report_json_roundtrip;
  ]
