(* Unit tests for the discrete-event engine, over the flat (UMA) reference
   memory so costs are exactly predictable. *)

open Numa_machine
module Engine = Numa_sim.Engine
module Api = Numa_sim.Api
module Memory_iface = Numa_sim.Memory_iface

let config ?(n_cpus = 4) () = Config.ace ~n_cpus ()

let make ?(n_cpus = 4) ?(engine_tweak = Fun.id) ?(scheduler = Engine.Affinity) () =
  let machine = config ~n_cpus () in
  let memory = Memory_iface.flat machine in
  Engine.create (engine_tweak (Engine.default_config ~n_cpus)) ~memory ~scheduler

let test_compute_accounting () =
  let e = make () in
  ignore (Engine.spawn e ~cpu:1 ~name:"t" (fun () -> Api.compute 5e6));
  Engine.run e;
  Alcotest.(check (float 1.)) "5 ms of user time on cpu 1" 5e6 (Engine.user_ns e ~cpu:1);
  Alcotest.(check (float 0.)) "nothing on cpu 0" 0. (Engine.user_ns e ~cpu:0);
  Alcotest.(check (float 1.)) "elapsed = the compute" 5e6 (Engine.elapsed_ns e)

let test_reference_accounting () =
  let e = make () in
  ignore
    (Engine.spawn e ~cpu:0 ~name:"t" (fun () ->
         Api.read ~count:100 7;
         Api.write ~count:50 7));
  Engine.run e;
  (* flat memory: local speeds. *)
  Alcotest.(check (float 1.)) "user = 100 fetches + 50 stores"
    ((100. *. 650.) +. (50. *. 840.))
    (Engine.user_ns e ~cpu:0)

let test_parallel_clocks_independent () =
  let e = make () in
  ignore (Engine.spawn e ~cpu:0 ~name:"a" (fun () -> Api.compute 10e6));
  ignore (Engine.spawn e ~cpu:1 ~name:"b" (fun () -> Api.compute 4e6));
  Engine.run e;
  Alcotest.(check (float 1.)) "total user is sum" 14e6 (Engine.total_user_ns e);
  Alcotest.(check (float 1.)) "elapsed is max" 10e6 (Engine.elapsed_ns e)

let test_two_threads_share_a_cpu () =
  let e = make () in
  ignore (Engine.spawn e ~cpu:2 ~name:"a" (fun () -> Api.compute 10e6));
  ignore (Engine.spawn e ~cpu:2 ~name:"b" (fun () -> Api.compute 10e6));
  Engine.run e;
  (* Serialised on one clock: elapsed = 20 ms, user = 20 ms on cpu 2. *)
  Alcotest.(check (float 1.)) "user" 20e6 (Engine.user_ns e ~cpu:2);
  Alcotest.(check (float 1.)) "elapsed serialised" 20e6 (Engine.elapsed_ns e)

let test_read_value_roundtrip () =
  let e = make () in
  let seen = ref (-1) in
  ignore
    (Engine.spawn e ~cpu:0 ~name:"t" (fun () ->
         Api.write ~value:33 4;
         seen := Api.read_value 4));
  Engine.run e;
  Alcotest.(check int) "read back" 33 !seen

let test_lock_mutual_exclusion () =
  let e = make () in
  let lock = Engine.make_lock e ~vpage:0 in
  let in_section = ref 0 and max_seen = ref 0 and entries = ref 0 in
  for cpu = 0 to 3 do
    ignore
      (Engine.spawn e ~cpu ~name:(Printf.sprintf "t%d" cpu) (fun () ->
           for _ = 1 to 10 do
             Api.lock lock;
             incr in_section;
             incr entries;
             if !in_section > !max_seen then max_seen := !in_section;
             Api.compute 100_000.;
             decr in_section;
             Api.unlock lock
           done))
  done;
  Engine.run e;
  Alcotest.(check int) "never two holders" 1 !max_seen;
  Alcotest.(check int) "all entries" 40 !entries;
  Alcotest.(check int) "acquisitions counted" 40 lock.Numa_sim.Sync.acquisitions

let test_unlock_by_non_holder_fails () =
  let e = make () in
  let lock = Engine.make_lock e ~vpage:0 in
  ignore (Engine.spawn e ~cpu:0 ~name:"holder" (fun () ->
      Api.lock lock;
      Api.compute 1e6));
  ignore (Engine.spawn e ~cpu:1 ~name:"thief" (fun () -> Api.unlock lock));
  Alcotest.(check bool) "raises" true
    (match Engine.run e with
    | () -> false
    | exception Failure _ -> true)

let test_barrier_synchronises () =
  let e = make () in
  let barrier = Engine.make_barrier e ~vpage:0 ~parties:3 in
  let order = ref [] in
  for i = 0 to 2 do
    ignore
      (Engine.spawn e ~cpu:i ~name:(Printf.sprintf "t%d" i) (fun () ->
           (* Unequal pre-barrier work. *)
           Api.compute (float_of_int (i + 1) *. 1e6);
           order := (`Before i) :: !order;
           Api.barrier barrier;
           order := (`After i) :: !order))
  done;
  Engine.run e;
  let events = List.rev !order in
  let all_befores_first =
    let rec split = function
      | `Before _ :: rest -> split rest
      | rest -> List.for_all (function `After _ -> true | `Before _ -> false) rest
    in
    split events
  in
  Alcotest.(check bool) "no thread passes early" true all_befores_first;
  Alcotest.(check int) "barrier cycled once" 1 barrier.Numa_sim.Sync.generation

let test_barrier_reusable () =
  let e = make () in
  let barrier = Engine.make_barrier e ~vpage:0 ~parties:2 in
  let rounds = ref 0 in
  for i = 0 to 1 do
    ignore
      (Engine.spawn e ~cpu:i ~name:(Printf.sprintf "t%d" i) (fun () ->
           for _ = 1 to 5 do
             Api.compute 1e5;
             Api.barrier barrier;
             if i = 0 then incr rounds
           done))
  done;
  Engine.run e;
  Alcotest.(check int) "five rounds" 5 !rounds;
  Alcotest.(check int) "five generations" 5 barrier.Numa_sim.Sync.generation

let test_spin_wait_burns_user_time () =
  let e = make () in
  let lock = Engine.make_lock e ~vpage:0 in
  ignore
    (Engine.spawn e ~cpu:0 ~name:"holder" (fun () ->
         Api.lock lock;
         Api.compute 5e6;
         Api.unlock lock));
  ignore
    (Engine.spawn e ~cpu:1 ~name:"waiter" (fun () ->
         Api.compute 1e5 (* let the holder get there first *);
         Api.lock lock;
         Api.unlock lock));
  Engine.run e;
  (* The waiter spun for ~4.9 ms of user time on its own CPU. *)
  Alcotest.(check bool) "waiter burned user time spinning" true
    (Engine.user_ns e ~cpu:1 > 3e6);
  Alcotest.(check bool) "polls were counted" true (lock.Numa_sim.Sync.contended_polls > 100)

let test_syscall_plain () =
  let e = make () in
  ignore
    (Engine.spawn e ~cpu:2 ~name:"t" (fun () ->
         Api.syscall ~service_ns:2e6 ();
         Api.compute 1e6));
  Engine.run e;
  Alcotest.(check (float 1.)) "service is system time" 2e6 (Engine.system_ns e ~cpu:2);
  Alcotest.(check (float 1.)) "user unaffected by the call" 1e6 (Engine.user_ns e ~cpu:2)

let test_syscall_unix_master_serialises () =
  let e =
    make
      ~engine_tweak:(fun c -> { c with Engine.unix_master = true })
      ()
  in
  for cpu = 1 to 3 do
    ignore
      (Engine.spawn e ~cpu ~name:(Printf.sprintf "t%d" cpu) (fun () ->
           Api.syscall ~service_ns:3e6 ()))
  done;
  Engine.run e;
  (* All service time lands on cpu 0 and the calls serialise there. *)
  Alcotest.(check (float 1.)) "master does all the work" 9e6 (Engine.system_ns e ~cpu:0);
  Alcotest.(check (float 1.)) "callers accrue nothing" 0.
    (Engine.system_ns e ~cpu:1 +. Engine.user_ns e ~cpu:1);
  Alcotest.(check bool) "master clock reflects the queue" true
    (Engine.elapsed_ns e >= 9e6)

let test_single_queue_migrates () =
  let e = make ~scheduler:Engine.Single_queue () in
  (* More threads than CPUs; under a single queue they spread onto idle
     CPUs rather than stacking on their spawn CPU. *)
  let tids = ref [] in
  for i = 0 to 5 do
    tids :=
      Engine.spawn e ~cpu:0 ~name:(Printf.sprintf "t%d" i) (fun () ->
          for _ = 1 to 10 do
            Api.compute 1e6
          done)
      :: !tids
  done;
  Engine.run e;
  let cpus_used =
    List.sort_uniq compare (List.map (fun tid -> Engine.thread_cpu e ~tid) !tids)
  in
  Alcotest.(check bool) "threads spread over CPUs" true (List.length cpus_used > 1);
  (* Work conservation: total user time is exactly the computation. *)
  Alcotest.(check (float 10.)) "total user conserved" 60e6 (Engine.total_user_ns e)

let test_deadlock_detection () =
  (* A barrier that can never fill: the lone waiter spins forever; the
     event budget must stop the run. *)
  let e = make ~engine_tweak:(fun c -> { c with Engine.max_events = 10_000 }) () in
  let barrier = Engine.make_barrier e ~vpage:1 ~parties:2 in
  ignore (Engine.spawn e ~cpu:0 ~name:"lonely" (fun () -> Api.barrier barrier));
  Alcotest.(check bool) "event budget catches the livelock" true
    (match Engine.run e with
    | () -> false
    | exception Failure _ -> true
    | exception Engine.Deadlock _ -> true)

let test_migrate_rebinds_thread () =
  let e = make () in
  let tid =
    Engine.spawn e ~cpu:0 ~name:"hopper" (fun () ->
        Api.compute 1e6;
        Api.migrate ~cpu:3;
        Api.compute 2e6)
  in
  Engine.run e;
  Alcotest.(check int) "ends on target cpu" 3 (Engine.thread_cpu e ~tid);
  Alcotest.(check (float 1.)) "pre-hop work on cpu 0" 1e6 (Engine.user_ns e ~cpu:0);
  Alcotest.(check (float 1.)) "post-hop work on cpu 3" 2e6 (Engine.user_ns e ~cpu:3);
  Alcotest.(check bool) "reschedule charged as system time" true
    (Engine.system_ns e ~cpu:3 > 0.)

let test_migrate_bad_cpu_fails () =
  let e = make () in
  ignore (Engine.spawn e ~cpu:0 ~name:"bad" (fun () -> Api.migrate ~cpu:99));
  Alcotest.(check bool) "rejected" true
    (match Engine.run e with () -> false | exception Failure _ -> true)

let test_determinism () =
  let run () =
    let e = make () in
    let lock = Engine.make_lock e ~vpage:0 in
    for cpu = 0 to 3 do
      ignore
        (Engine.spawn e ~cpu ~name:(Printf.sprintf "t%d" cpu) (fun () ->
             for _ = 1 to 20 do
               Api.with_lock lock (fun () -> Api.write ~count:3 5);
               Api.compute 1e5;
               Api.read ~count:10 6
             done))
    done;
    Engine.run e;
    (Engine.total_user_ns e, Engine.total_system_ns e, Engine.n_events e)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical reruns" true (a = b)

let test_spawn_after_run_rejected () =
  let e = make () in
  ignore (Engine.spawn e ~name:"t" (fun () -> Api.compute 1e3));
  Engine.run e;
  Alcotest.check_raises "late spawn" (Invalid_argument "Engine.spawn: engine already running")
    (fun () -> ignore (Engine.spawn e ~name:"late" (fun () -> ())))

let test_empty_run () =
  let e = make () in
  Engine.run e;
  Alcotest.(check (float 0.)) "no time passes" 0. (Engine.elapsed_ns e)

(* --- event queue ---------------------------------------------------------- *)

(* Direct tests of the engine's ready queue (the structure that replaced
   the generic Numa_util pairing heap on the hot path). *)

module Event_queue = Numa_sim.Event_queue

let test_event_queue_basic () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check (float 0.)) "min_time of empty is infinity" infinity
    (Event_queue.min_time q);
  Alcotest.(check int) "pop of empty is -1" (-1) (Event_queue.pop_min q);
  Event_queue.add q ~time:3. ~seq:0 ~tid:30;
  Event_queue.add q ~time:1. ~seq:1 ~tid:10;
  Event_queue.add q ~time:2. ~seq:2 ~tid:20;
  Alcotest.(check int) "length" 3 (Event_queue.length q);
  Alcotest.(check (float 0.)) "min time" 1. (Event_queue.min_time q);
  Alcotest.(check int) "pop 1" 10 (Event_queue.pop_min q);
  Alcotest.(check int) "pop 2" 20 (Event_queue.pop_min q);
  Alcotest.(check int) "pop 3" 30 (Event_queue.pop_min q);
  Alcotest.(check bool) "drained" true (Event_queue.is_empty q)

let test_event_queue_fifo_ties () =
  (* Equal times must pop in insertion (sequence) order — the property the
     engine's deterministic scheduling relies on. *)
  let q = Event_queue.create () in
  Event_queue.add q ~time:5. ~seq:0 ~tid:1;
  Event_queue.add q ~time:5. ~seq:1 ~tid:2;
  Event_queue.add q ~time:5. ~seq:2 ~tid:3;
  Alcotest.(check (list int)) "fifo on ties" [ 1; 2; 3 ]
    (List.init 3 (fun _ -> Event_queue.pop_min q))

let test_event_queue_clear () =
  let q = Event_queue.create () in
  for i = 1 to 10 do
    Event_queue.add q ~time:(float_of_int i) ~seq:i ~tid:i
  done;
  Event_queue.clear q;
  Alcotest.(check bool) "cleared" true (Event_queue.is_empty q);
  Alcotest.(check int) "length 0" 0 (Event_queue.length q)

let test_event_queue_grows () =
  (* Push past the initial capacity (64) and check nothing is lost. *)
  let q = Event_queue.create () in
  for i = 0 to 199 do
    Event_queue.add q ~time:(float_of_int (199 - i)) ~seq:i ~tid:(199 - i)
  done;
  Alcotest.(check int) "all queued" 200 (Event_queue.length q);
  for expect = 0 to 199 do
    Alcotest.(check int) "sorted drain" expect (Event_queue.pop_min q)
  done

let prop_event_queue_sorts =
  QCheck.Test.make ~name:"event queue drains in (time, seq) order" ~count:200
    QCheck.(list (pair (float_bound_exclusive 1000.) small_int))
    (fun entries ->
      let q = Event_queue.create () in
      List.iteri
        (fun seq (time, tid) -> Event_queue.add q ~time ~seq ~tid)
        entries;
      let rec drain acc =
        if Event_queue.is_empty q then List.rev acc
        else
          let time = Event_queue.min_time q in
          drain ((time, Event_queue.pop_min q) :: acc)
      in
      let expect =
        List.mapi (fun seq (time, tid) -> (time, seq, tid)) entries
        |> List.stable_sort (fun (t1, s1, _) (t2, s2, _) ->
               match Float.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c)
        |> List.map (fun (time, _, tid) -> (time, tid))
      in
      drain [] = expect)

let suite =
  [
    Alcotest.test_case "compute accounting" `Quick test_compute_accounting;
    Alcotest.test_case "reference accounting" `Quick test_reference_accounting;
    Alcotest.test_case "parallel clocks" `Quick test_parallel_clocks_independent;
    Alcotest.test_case "threads share a cpu" `Quick test_two_threads_share_a_cpu;
    Alcotest.test_case "read value round trip" `Quick test_read_value_roundtrip;
    Alcotest.test_case "lock mutual exclusion" `Quick test_lock_mutual_exclusion;
    Alcotest.test_case "unlock by non-holder" `Quick test_unlock_by_non_holder_fails;
    Alcotest.test_case "barrier synchronises" `Quick test_barrier_synchronises;
    Alcotest.test_case "barrier reusable" `Quick test_barrier_reusable;
    Alcotest.test_case "spin burns user time" `Quick test_spin_wait_burns_user_time;
    Alcotest.test_case "syscall plain" `Quick test_syscall_plain;
    Alcotest.test_case "syscall unix master" `Quick test_syscall_unix_master_serialises;
    Alcotest.test_case "single queue migrates" `Quick test_single_queue_migrates;
    Alcotest.test_case "stuck barrier detected" `Quick test_deadlock_detection;
    Alcotest.test_case "migrate rebinds thread" `Quick test_migrate_rebinds_thread;
    Alcotest.test_case "migrate to bad cpu fails" `Quick test_migrate_bad_cpu_fails;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "spawn after run rejected" `Quick test_spawn_after_run_rejected;
    Alcotest.test_case "empty run" `Quick test_empty_run;
    Alcotest.test_case "event queue basic" `Quick test_event_queue_basic;
    Alcotest.test_case "event queue FIFO ties" `Quick test_event_queue_fifo_ties;
    Alcotest.test_case "event queue clear" `Quick test_event_queue_clear;
    Alcotest.test_case "event queue grows" `Quick test_event_queue_grows;
    QCheck_alcotest.to_alcotest prop_event_queue_sorts;
  ]
