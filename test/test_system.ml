(* End-to-end smoke tests of the assembled system: small workloads driven
   through the full machine/VM/NUMA/engine stack. *)

open Numa_machine
module System = Numa_system.System
module Report = Numa_system.Report
module Api = Numa_sim.Api
module Region_attr = Numa_vm.Region_attr
module Manager = Numa_core.Numa_manager

let small_config ?(n_cpus = 4) () =
  Config.ace ~n_cpus ~local_pages_per_cpu:64 ~global_pages:256 ()

let mk ?policy ?(n_cpus = 4) () =
  System.create ?policy ~config:(small_config ~n_cpus ()) ()

let alloc_data sys ~name ~pages =
  System.alloc_region sys ~name ~kind:Region_attr.Data
    ~sharing:Region_attr.Declared_write_shared ~pages ()

let check_ok sys =
  match System.check_invariants sys with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariant violated: %s" msg

(* A single thread writing one private page: page must become
   local-writable on the thread's CPU, all references local. *)
let test_private_page_stays_local () =
  let sys = mk () in
  let data = alloc_data sys ~name:"private" ~pages:1 in
  ignore
    (System.spawn sys ~cpu:2 ~name:"w" (fun ~stack_vpage:_ ->
         Api.write ~count:100 data.System.base_vpage;
         Api.read ~count:50 data.System.base_vpage));
  let report = System.run sys in
  check_ok sys;
  (match System.lpage_of sys ~vpage:data.System.base_vpage () with
  | None -> Alcotest.fail "page never materialised"
  | Some lpage -> (
      match Manager.state_of (System.numa_manager sys) ~lpage with
      | Manager.Local_writable 2 -> ()
      | st -> Alcotest.failf "expected local-writable(2), got %a" Manager.pp_state st));
  Alcotest.(check int) "no global data refs" 0
    report.Report.refs_writable_data.Report.global_reads;
  Alcotest.(check bool) "alpha = 1" true (report.Report.alpha_counted > 0.999)

(* A page written once then only read by everyone: must end replicated
   read-only, with a replica on every reading CPU. *)
let test_read_mostly_page_replicates () =
  let sys = mk () in
  let data = alloc_data sys ~name:"table" ~pages:1 in
  let barrier = System.make_barrier sys ~name:"b" ~parties:4 in
  for cpu = 0 to 3 do
    ignore
      (System.spawn sys ~cpu ~name:(Printf.sprintf "r%d" cpu)
         (fun ~stack_vpage:_ ->
           if cpu = 0 then Api.write ~count:10 ~value:42 data.System.base_vpage;
           Api.barrier barrier;
           Api.read ~count:200 data.System.base_vpage))
  done;
  ignore (System.run sys);
  check_ok sys;
  let lpage = Option.get (System.lpage_of sys ~vpage:data.System.base_vpage ()) in
  let mgr = System.numa_manager sys in
  (match Manager.state_of mgr ~lpage with
  | Manager.Read_only -> ()
  | st -> Alcotest.failf "expected read-only, got %a" Manager.pp_state st);
  Alcotest.(check int) "replicated on all 4 nodes" 4
    (List.length (Manager.replica_nodes mgr ~lpage))

(* A page written alternately by two CPUs: must exceed the move threshold
   and end up pinned in global memory. *)
let test_ping_pong_page_pins () =
  let sys = mk ~policy:(System.Move_limit { threshold = 4 }) () in
  let data = alloc_data sys ~name:"pingpong" ~pages:1 in
  let barrier = System.make_barrier sys ~name:"b" ~parties:2 in
  for cpu = 0 to 1 do
    ignore
      (System.spawn sys ~cpu ~name:(Printf.sprintf "w%d" cpu)
         (fun ~stack_vpage:_ ->
           for _round = 1 to 20 do
             Api.write data.System.base_vpage;
             Api.barrier barrier
           done))
  done;
  let report = System.run sys in
  check_ok sys;
  let lpage = Option.get (System.lpage_of sys ~vpage:data.System.base_vpage ()) in
  (match Manager.state_of (System.numa_manager sys) ~lpage with
  | Manager.Global_writable -> ()
  | st -> Alcotest.failf "expected global-writable, got %a" Manager.pp_state st);
  Alcotest.(check bool) "policy pinned at least one page" true (report.Report.pins >= 1);
  Alcotest.(check bool) "moves were counted" true (report.Report.numa_moves >= 4)

(* All-global policy: every data reference goes to global memory. *)
let test_all_global_policy () =
  let sys = mk ~policy:System.All_global () in
  let data = alloc_data sys ~name:"d" ~pages:2 in
  ignore
    (System.spawn sys ~name:"w" (fun ~stack_vpage:_ ->
         Api.write ~count:64 data.System.base_vpage;
         Api.read ~count:64 (data.System.base_vpage + 1)));
  let report = System.run sys in
  check_ok sys;
  Alcotest.(check int) "no local refs at all" 0
    (report.Report.refs_all.Report.local_reads + report.Report.refs_all.Report.local_writes);
  Alcotest.(check bool) "alpha = 0" true (report.Report.alpha_counted < 0.001)

(* Coherence: a value written by one thread must be observed by another
   after synchronisation, across protocol state changes. *)
let test_producer_consumer_coherence () =
  let sys = mk () in
  let data = alloc_data sys ~name:"d" ~pages:1 in
  let barrier = System.make_barrier sys ~name:"b" ~parties:2 in
  let seen = ref (-1) in
  ignore
    (System.spawn sys ~cpu:0 ~name:"producer" (fun ~stack_vpage:_ ->
         Api.write ~value:7777 data.System.base_vpage;
         Api.barrier barrier));
  ignore
    (System.spawn sys ~cpu:1 ~name:"consumer" (fun ~stack_vpage:_ ->
         Api.barrier barrier;
         seen := Api.read_value data.System.base_vpage));
  ignore (System.run sys);
  check_ok sys;
  Alcotest.(check int) "consumer saw the produced value" 7777 !seen

(* Locks: mutual exclusion and accounting. *)
let test_lock_counter () =
  let sys = mk () in
  let data = alloc_data sys ~name:"counter" ~pages:1 in
  let lock = System.make_lock sys ~name:"l" in
  let hits = ref 0 in
  for cpu = 0 to 3 do
    ignore
      (System.spawn sys ~cpu ~name:(Printf.sprintf "t%d" cpu)
         (fun ~stack_vpage:_ ->
           for _i = 1 to 25 do
             Api.with_lock lock (fun () ->
                 let v = Api.read_value data.System.base_vpage in
                 Api.compute 2000.;
                 Api.write ~value:(v + 1) data.System.base_vpage;
                 incr hits)
           done))
  done;
  let report = System.run sys in
  check_ok sys;
  Alcotest.(check int) "all critical sections ran" 100 !hits;
  Alcotest.(check int) "lock acquisitions" 100 report.Report.lock_acquisitions;
  let lpage = Option.get (System.lpage_of sys ~vpage:data.System.base_vpage ()) in
  (* The shared counter page was written from four CPUs: it must have been
     pinned global by the default policy. *)
  match Manager.state_of (System.numa_manager sys) ~lpage with
  | Manager.Global_writable -> ()
  | st -> Alcotest.failf "counter page should be global, got %a" Manager.pp_state st

(* T_local semantics: one thread on a one-CPU machine keeps everything
   local even for "shared" data. *)
let test_single_cpu_all_local () =
  let sys = mk ~n_cpus:1 () in
  let data = alloc_data sys ~name:"d" ~pages:4 in
  ignore
    (System.spawn sys ~name:"solo" (fun ~stack_vpage ->
         for p = 0 to 3 do
           Api.write ~count:100 (data.System.base_vpage + p);
           Api.read ~count:100 (data.System.base_vpage + p)
         done;
         Api.read ~count:10 stack_vpage));
  let report = System.run sys in
  check_ok sys;
  Alcotest.(check bool) "alpha = 1 on a single CPU" true
    (report.Report.alpha_counted > 0.999)

(* Pageout resets pinning (footnote 4). *)
let test_pageout_resets_pin () =
  let sys = mk ~policy:(System.Move_limit { threshold = 1 }) () in
  let data = alloc_data sys ~name:"d" ~pages:1 in
  let barrier = System.make_barrier sys ~name:"b" ~parties:2 in
  for cpu = 0 to 1 do
    ignore
      (System.spawn sys ~cpu ~name:(Printf.sprintf "w%d" cpu)
         (fun ~stack_vpage:_ ->
           for _i = 1 to 10 do
             Api.write ~value:cpu data.System.base_vpage;
             Api.barrier barrier
           done))
  done;
  ignore (System.run sys);
  let mgr = System.numa_manager sys in
  let lpage0 = Option.get (System.lpage_of sys ~vpage:data.System.base_vpage ()) in
  (match Manager.state_of mgr ~lpage:lpage0 with
  | Manager.Global_writable -> ()
  | st -> Alcotest.failf "expected pinned global page, got %a" Manager.pp_state st);
  System.page_out sys data ~page_index:0;
  Alcotest.(check bool) "page no longer resident" true
    (System.lpage_of sys ~vpage:data.System.base_vpage () = None);
  check_ok sys

(* Migrate-threads on a striped machine: ping-ponged pages pin on their
   stripe home, and the coordinated mode re-homes a thread toward them.
   The rehomes must surface in both the counter and the event stream. *)
let test_migrate_threads_rehomes () =
  let config = Config.butterfly ~n_cpus:4 ~local_pages_per_cpu:64 ~global_pages:256 () in
  let obs = Numa_obs.Hub.create () in
  let migrated_events = ref 0 in
  Numa_obs.Hub.attach obs ~name:"watch" (fun ~ts:_ ev ->
      match ev with
      | Numa_obs.Event.Thread_migrated _ -> incr migrated_events
      | _ -> ());
  let sys =
    System.create ~obs ~policy:(System.Migrate_threads { threshold = 1 }) ~config ()
  in
  (* Several ping-pong pages, so some pin on a stripe home that is
     neither writer's CPU and a re-homing hint fires. *)
  let data = alloc_data sys ~name:"pingpong" ~pages:4 in
  let barrier = System.make_barrier sys ~name:"b" ~parties:2 in
  for cpu = 0 to 1 do
    ignore
      (System.spawn sys ~cpu ~name:(Printf.sprintf "w%d" cpu)
         (fun ~stack_vpage:_ ->
           for _round = 1 to 10 do
             for page = 0 to 3 do
               Api.write ~count:50 (data.System.base_vpage + page)
             done;
             Api.barrier barrier
           done))
  done;
  let report = System.run sys in
  check_ok sys;
  Alcotest.(check bool) "pages were pinned" true (report.Report.pins >= 1);
  let n = System.thread_migrations sys in
  Alcotest.(check bool) "threads were re-homed" true (n >= 1);
  Alcotest.(check int) "each re-homing was announced" n !migrated_events

(* The default policy never re-homes anything. *)
let test_default_policy_never_rehomes () =
  let sys = mk () in
  let data = alloc_data sys ~name:"pingpong" ~pages:1 in
  let barrier = System.make_barrier sys ~name:"b" ~parties:2 in
  for cpu = 0 to 1 do
    ignore
      (System.spawn sys ~cpu ~name:(Printf.sprintf "w%d" cpu)
         (fun ~stack_vpage:_ ->
           for _round = 1 to 10 do
             Api.write ~count:100 data.System.base_vpage;
             Api.barrier barrier
           done))
  done;
  ignore (System.run sys);
  Alcotest.(check int) "no re-homing outside migrate-threads" 0
    (System.thread_migrations sys)

let suite =
  [
    Alcotest.test_case "private page stays local" `Quick test_private_page_stays_local;
    Alcotest.test_case "read-mostly page replicates" `Quick test_read_mostly_page_replicates;
    Alcotest.test_case "ping-pong page pins" `Quick test_ping_pong_page_pins;
    Alcotest.test_case "all-global policy" `Quick test_all_global_policy;
    Alcotest.test_case "producer/consumer coherence" `Quick test_producer_consumer_coherence;
    Alcotest.test_case "lock-protected counter" `Quick test_lock_counter;
    Alcotest.test_case "single CPU is all-local" `Quick test_single_cpu_all_local;
    Alcotest.test_case "pageout resets pinning" `Quick test_pageout_resets_pin;
    Alcotest.test_case "migrate-threads re-homes threads" `Quick
      test_migrate_threads_rehomes;
    Alcotest.test_case "default policy never re-homes" `Quick
      test_default_policy_never_rehomes;
  ]
