(* Tests for the trace library: capture, persistence, classification,
   false-sharing analysis, and the offline-optimal DP. *)

open Numa_machine
module System = Numa_system.System
module Api = Numa_sim.Api
module Trace_buffer = Numa_trace.Trace_buffer
module Classify = Numa_trace.Classify
module False_sharing = Numa_trace.False_sharing
module Optimal = Numa_trace.Optimal
module Region_attr = Numa_vm.Region_attr

let small_config () = Config.ace ~n_cpus:4 ~local_pages_per_cpu:64 ~global_pages:128 ()

let traced_run ~setup =
  let sys = System.create ~config:(small_config ()) () in
  let buffer = Trace_buffer.create () in
  Trace_buffer.attach buffer sys;
  setup sys;
  ignore (System.run sys);
  (sys, buffer)

let three_class_workload sys =
  let alloc name sharing =
    System.alloc_region sys ~name ~kind:Region_attr.Data ~sharing ~pages:1 ()
  in
  let private_ = alloc "private" Region_attr.Declared_private in
  let read_shared = alloc "read-shared" Region_attr.Declared_read_shared in
  let write_shared = alloc "write-shared" Region_attr.Declared_write_shared in
  let barrier = System.make_barrier sys ~name:"b" ~parties:3 in
  (* Note: the read-shared page is never written at all — by the paper's
     definition (section 4.2) even a single initialising write would make a
     multi-reader page "writably shared". *)
  for cpu = 0 to 2 do
    ignore
      (System.spawn sys ~cpu ~name:(Printf.sprintf "t%d" cpu) (fun ~stack_vpage:_ ->
           if cpu = 0 then begin
             Api.write ~count:20 private_.System.base_vpage;
             Api.read ~count:20 private_.System.base_vpage
           end;
           Api.barrier barrier;
           Api.read ~count:30 read_shared.System.base_vpage;
           Api.write ~count:10 write_shared.System.base_vpage))
  done;
  (private_, read_shared, write_shared)

(* --- degenerate inputs --------------------------------------------------- *)

let mk_event ?(at = 0.) ~cpu ~vpage ~kind ~count ~region () =
  {
    System.at;
    cpu;
    tid = cpu;
    vpage;
    kind;
    count;
    where = Location.In_global;
    region;
  }

let test_classify_empty_trace () =
  let buffer = Trace_buffer.create () in
  Alcotest.(check int) "no page summaries" 0 (List.length (Classify.classify buffer));
  let findings = False_sharing.analyse ~declared_of:(fun ~vpage:_ -> None) [] in
  Alcotest.(check int) "no findings" 0 (List.length findings);
  Alcotest.(check int) "no problems" 0 (List.length (False_sharing.problems findings))

let test_classify_single_reference_page () =
  let buffer = Trace_buffer.create () in
  Trace_buffer.add buffer
    (mk_event ~cpu:2 ~vpage:7 ~kind:Access.Load ~count:1 ~region:"solo" ());
  match Classify.classify buffer with
  | [ s ] ->
      Alcotest.(check int) "page" 7 s.Classify.vpage;
      Alcotest.(check int) "one read" 1 s.Classify.reads;
      Alcotest.(check int) "no writes" 0 s.Classify.writes;
      Alcotest.(check (list int)) "single reader" [ 2 ] s.Classify.readers;
      Alcotest.(check (list int)) "no writers" [] s.Classify.writers;
      Alcotest.(check string) "classed private" "private"
        (Classify.class_to_string s.Classify.cls)
  | l -> Alcotest.failf "expected one summary, got %d" (List.length l)

let test_classify_write_only_page () =
  let buffer = Trace_buffer.create () in
  Trace_buffer.add buffer
    (mk_event ~cpu:0 ~vpage:3 ~kind:Access.Store ~count:5 ~region:"wo" ());
  (match Classify.classify buffer with
  | [ s ] ->
      Alcotest.(check int) "writes counted" 5 s.Classify.writes;
      Alcotest.(check int) "no reads" 0 s.Classify.reads;
      Alcotest.(check bool) "one writer, no other users: private" true
        (s.Classify.cls = Classify.Class_private)
  | l -> Alcotest.failf "expected one summary, got %d" (List.length l));
  (* A second writing CPU makes the write-only page writably shared. *)
  Trace_buffer.add buffer
    (mk_event ~at:1. ~cpu:1 ~vpage:3 ~kind:Access.Store ~count:2 ~region:"wo" ());
  match Classify.classify buffer with
  | [ s ] ->
      Alcotest.(check (list int)) "both writers" [ 0; 1 ] s.Classify.writers;
      Alcotest.(check bool) "two writers: writably shared" true
        (s.Classify.cls = Classify.Class_write_shared)
  | l -> Alcotest.failf "expected one summary, got %d" (List.length l)

(* --- buffer ------------------------------------------------------------- *)

let test_capture_counts () =
  let _, buffer = traced_run ~setup:(fun sys -> ignore (three_class_workload sys)) in
  Alcotest.(check bool) "events recorded" true (Trace_buffer.length buffer > 10);
  Alcotest.(check bool) "references exceed events (batching)" true
    (Trace_buffer.total_references buffer > Trace_buffer.length buffer)

let test_events_in_time_order () =
  let _, buffer = traced_run ~setup:(fun sys -> ignore (three_class_workload sys)) in
  let last = ref neg_infinity and ok = ref true in
  Trace_buffer.iter buffer (fun e ->
      if e.System.at < !last then ok := false;
      last := e.System.at);
  Alcotest.(check bool) "non-decreasing timestamps" true !ok

let test_save_load_roundtrip () =
  let _, buffer = traced_run ~setup:(fun sys -> ignore (three_class_workload sys)) in
  let path = Filename.temp_file "trace" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_buffer.save buffer path;
      let reloaded = Trace_buffer.load path in
      Alcotest.(check int) "same length" (Trace_buffer.length buffer)
        (Trace_buffer.length reloaded);
      Alcotest.(check int) "same total refs" (Trace_buffer.total_references buffer)
        (Trace_buffer.total_references reloaded);
      (* Spot-check field fidelity on every event. *)
      let a = ref [] and b = ref [] in
      Trace_buffer.iter buffer (fun e -> a := (e.System.cpu, e.System.vpage, e.System.kind, e.System.count) :: !a);
      Trace_buffer.iter reloaded (fun e -> b := (e.System.cpu, e.System.vpage, e.System.kind, e.System.count) :: !b);
      Alcotest.(check bool) "events identical" true (!a = !b))

(* --- classification ---------------------------------------------------------- *)

let test_classification_three_classes () =
  let sys, buffer =
    let result = ref None in
    let sys, buffer =
      traced_run ~setup:(fun sys -> result := Some (three_class_workload sys))
    in
    ignore !result;
    (sys, buffer)
  in
  ignore sys;
  let summaries = Classify.classify buffer in
  let class_of region =
    match List.find_opt (fun (s : Classify.summary) -> s.Classify.region = region) summaries with
    | Some s -> s.Classify.cls
    | None -> Alcotest.failf "region %s not classified" region
  in
  Alcotest.(check bool) "private" true (class_of "private" = Classify.Class_private);
  Alcotest.(check bool) "read-shared" true
    (class_of "read-shared" = Classify.Class_read_shared);
  Alcotest.(check bool) "write-shared" true
    (class_of "write-shared" = Classify.Class_write_shared)

let test_by_region_grouping () =
  let _, buffer = traced_run ~setup:(fun sys -> ignore (three_class_workload sys)) in
  let groups = Classify.by_region (Classify.classify buffer) in
  Alcotest.(check bool) "private region present" true
    (List.mem_assoc "private" groups);
  (* Every page appears exactly once across groups. *)
  let total = List.fold_left (fun acc (_, pages) -> acc + List.length pages) 0 groups in
  Alcotest.(check int) "partition" (List.length (Classify.classify buffer)) total

(* --- false sharing ------------------------------------------------------------- *)

let test_false_sharing_detection () =
  (* Declare a region read-shared but write it from two CPUs. *)
  let sys, buffer =
    traced_run ~setup:(fun sys ->
        let lying =
          System.alloc_region sys ~name:"liar" ~kind:Region_attr.Data
            ~sharing:Region_attr.Declared_read_shared ~pages:1 ()
        in
        let barrier = System.make_barrier sys ~name:"b" ~parties:2 in
        for cpu = 0 to 1 do
          ignore
            (System.spawn sys ~cpu ~name:(Printf.sprintf "t%d" cpu)
               (fun ~stack_vpage:_ ->
                 Api.write ~count:5 lying.System.base_vpage;
                 Api.barrier barrier;
                 Api.read ~count:5 lying.System.base_vpage))
        done)
  in
  let findings =
    False_sharing.analyse
      ~declared_of:(False_sharing.declared_of_system sys)
      (Classify.classify buffer)
  in
  let problems = False_sharing.problems findings in
  Alcotest.(check bool) "found the liar" true
    (List.exists
       (fun (f : False_sharing.finding) ->
         f.False_sharing.page.Classify.region = "liar"
         && f.False_sharing.verdict = False_sharing.False_shared)
       problems)

let test_segregation_candidate_detection () =
  (* A write-shared page that is almost exclusively read by many CPUs. *)
  let sys, buffer =
    traced_run ~setup:(fun sys ->
        let hot =
          System.alloc_region sys ~name:"hot" ~kind:Region_attr.Data
            ~sharing:Region_attr.Declared_write_shared ~pages:1 ()
        in
        let barrier = System.make_barrier sys ~name:"b" ~parties:3 in
        for cpu = 0 to 2 do
          ignore
            (System.spawn sys ~cpu ~name:(Printf.sprintf "t%d" cpu)
               (fun ~stack_vpage:_ ->
                 if cpu = 0 then Api.write hot.System.base_vpage;
                 Api.barrier barrier;
                 Api.read ~count:500 hot.System.base_vpage))
        done)
  in
  let findings =
    False_sharing.analyse
      ~declared_of:(False_sharing.declared_of_system sys)
      (Classify.classify buffer)
  in
  Alcotest.(check bool) "flagged for segregation" true
    (List.exists
       (fun (f : False_sharing.finding) ->
         f.False_sharing.page.Classify.region = "hot"
         && f.False_sharing.verdict = False_sharing.Segregation_candidate)
       findings)

(* --- optimal DP ------------------------------------------------------------------ *)

let event ~cpu ~kind ~count =
  {
    System.at = 0.;
    cpu;
    tid = cpu;
    vpage = 0;
    kind;
    count;
    where = Location.In_global;
    region = "p";
  }

let test_optimal_private_page_is_local () =
  let config = small_config () in
  (* One CPU only: the optimum is zero-fill local + local references. *)
  let events = [ event ~cpu:1 ~kind:Access.Store ~count:100 ] in
  let opt = Optimal.page_optimal_ns ~config events in
  let expected =
    Cost.page_zero_ns config ~dst:Location.Local_here
    +. Cost.pmap_action_ns config
    +. Cost.references_ns config ~access:Access.Store ~where:Location.Local_here ~count:100
  in
  Alcotest.(check (float 1.)) "local store optimum" expected opt

let test_optimal_read_sharing_replicates () =
  let config = small_config () in
  (* Many readers: optimal replicates rather than staying global. *)
  let events = List.init 4 (fun cpu -> event ~cpu ~kind:Access.Load ~count:1000) in
  let opt = Optimal.page_optimal_ns ~config events in
  let all_global =
    Cost.page_zero_ns config ~dst:Location.In_global
    +. Cost.pmap_action_ns config
    +. Cost.references_ns config ~access:Access.Load ~where:Location.In_global ~count:4000
  in
  Alcotest.(check bool) "replication beats global for heavy readers" true
    (opt < all_global)

let test_optimal_ping_pong_goes_global () =
  let config = small_config () in
  (* Alternating writers with tiny batches: staying global must win over
     migrating every time. *)
  let events =
    List.init 40 (fun i -> event ~cpu:(i mod 2) ~kind:Access.Store ~count:1)
  in
  let opt = Optimal.page_optimal_ns ~config events in
  let all_global =
    Cost.page_zero_ns config ~dst:Location.In_global
    +. Cost.pmap_action_ns config
    +. Cost.references_ns config ~access:Access.Store ~where:Location.In_global ~count:40
  in
  Alcotest.(check (float 1.)) "global is optimal for ping-pong" all_global opt

let test_optimal_analyse_end_to_end () =
  let _, buffer = traced_run ~setup:(fun sys -> ignore (three_class_workload sys)) in
  let result = Optimal.analyse ~config:(small_config ()) buffer in
  Alcotest.(check bool) "pages analysed" true (result.Optimal.pages > 0);
  Alcotest.(check bool) "costs positive" true
    (result.Optimal.actual_ns > 0. && result.Optimal.optimal_ns > 0.)

(* --- trace replay ------------------------------------------------------------------ *)

let test_replay_matches_live_placement_shape () =
  (* Trace a ping-pong run, replay under the same policy: the replay must
     pin the page too, and an all-global replay of the same trace must
     show zero local references. *)
  let sys, buffer =
    traced_run ~setup:(fun sys ->
        let data =
          System.alloc_region sys ~name:"d" ~kind:Region_attr.Data
            ~sharing:Region_attr.Declared_write_shared ~pages:1 ()
        in
        let barrier = System.make_barrier sys ~name:"b" ~parties:2 in
        for cpu = 0 to 1 do
          ignore
            (System.spawn sys ~cpu ~name:(Printf.sprintf "t%d" cpu)
               (fun ~stack_vpage:_ ->
                 for _round = 1 to 20 do
                   Numa_sim.Api.write ~count:8 data.System.base_vpage;
                   Numa_sim.Api.barrier barrier
                 done))
        done)
  in
  let config = System.config sys in
  let same = Numa_trace.Replay.replay ~config ~policy:(System.Move_limit { threshold = 4 }) buffer in
  Alcotest.(check bool) "replay pins the ping-pong page" true (same.Numa_trace.Replay.pins >= 1);
  Alcotest.(check bool) "replay counted moves" true (same.Numa_trace.Replay.moves >= 4);
  let glob = Numa_trace.Replay.replay ~config ~policy:System.All_global buffer in
  Alcotest.(check int) "all-global replay has no local refs" 0
    glob.Numa_trace.Replay.local_refs;
  Alcotest.(check int) "all-global replay never moves" 0 glob.Numa_trace.Replay.moves;
  (* Never-pin replays strictly more protocol work than move-limit. *)
  let never = Numa_trace.Replay.replay ~config ~policy:System.Never_pin buffer in
  Alcotest.(check bool) "never-pin pays more protocol" true
    (never.Numa_trace.Replay.protocol_ns > same.Numa_trace.Replay.protocol_ns)

let test_replay_policy_comparison_renders () =
  let _, buffer = traced_run ~setup:(fun sys -> ignore (three_class_workload sys)) in
  let config = small_config () in
  let results =
    Numa_trace.Replay.compare_policies ~config
      ~policies:[ System.Move_limit { threshold = 4 }; System.All_global ]
      buffer
  in
  Alcotest.(check int) "two rows" 2 (List.length results);
  let rendered = Numa_trace.Replay.render results in
  Alcotest.(check bool) "mentions both policies" true
    (String.length rendered > 0
    && List.length (String.split_on_char '\n' rendered) >= 4)

let suite =
  [
    Alcotest.test_case "replay matches live shape" `Quick
      test_replay_matches_live_placement_shape;
    Alcotest.test_case "replay comparison renders" `Quick
      test_replay_policy_comparison_renders;
    Alcotest.test_case "capture counts" `Quick test_capture_counts;
    Alcotest.test_case "events in time order" `Quick test_events_in_time_order;
    Alcotest.test_case "save/load round trip" `Quick test_save_load_roundtrip;
    Alcotest.test_case "three-class classification" `Quick test_classification_three_classes;
    Alcotest.test_case "empty trace" `Quick test_classify_empty_trace;
    Alcotest.test_case "single-reference page" `Quick test_classify_single_reference_page;
    Alcotest.test_case "write-only page" `Quick test_classify_write_only_page;
    Alcotest.test_case "by-region grouping" `Quick test_by_region_grouping;
    Alcotest.test_case "false sharing detection" `Quick test_false_sharing_detection;
    Alcotest.test_case "segregation candidate" `Quick test_segregation_candidate_detection;
    Alcotest.test_case "optimal: private page local" `Quick test_optimal_private_page_is_local;
    Alcotest.test_case "optimal: readers replicate" `Quick test_optimal_read_sharing_replicates;
    Alcotest.test_case "optimal: ping-pong global" `Quick test_optimal_ping_pong_goes_global;
    Alcotest.test_case "optimal: end to end" `Quick test_optimal_analyse_end_to_end;
  ]
