(* The profiler's contract: every virtual nanosecond the engine puts on a
   CPU clock is attributed to exactly one category (conservation), the
   data is deterministic, and turning the profiler off leaves reports
   byte-identical. Plus the bench-compare regression gate. *)

module System = Numa_system.System
module Report = Numa_system.Report
module Engine = Numa_sim.Engine
module Profile = Numa_obs.Profile
module App_sig = Numa_apps.App_sig
module BC = Numa_metrics.Bench_compare

let qcheck t = QCheck_alcotest.to_alcotest t

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let run_app ?(profiling = true) ?(policy = System.Move_limit { threshold = 4 })
    ?(config = Numa_machine.Config.ace ~n_cpus:4 ()) ?(scale = 0.03) name =
  let app = Option.get (Numa_apps.Registry.find name) in
  let sys = System.create ~policy ~profiling ~config () in
  app.App_sig.setup sys { App_sig.nthreads = 4; scale; seed = 42L };
  let report = System.run sys in
  (sys, report)

let check_conserved ~label sys =
  let engine = System.engine sys in
  let p =
    match System.profile sys with
    | Some p -> p
    | None -> Alcotest.failf "%s: no profiler attached" label
  in
  let n_cpus = (System.config sys).Numa_machine.Config.n_cpus in
  let clocks = Array.init n_cpus (fun cpu -> Engine.clock_ns engine ~cpu) in
  match Profile.check_conservation p ~clocks ~elapsed_ns:(Engine.elapsed_ns engine) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: conservation violated: %s" label msg

(* Acceptance criterion: conservation on every Table 4 application. *)
let test_conservation_table4 () =
  List.iter
    (fun (app : App_sig.t) ->
      let sys, _ = run_app app.App_sig.name in
      check_conserved ~label:app.App_sig.name sys)
    Numa_apps.Registry.table4

(* And on the configurations the deterministic sweep does not cover:
   random app x policy x topology (the qcheck satellite). *)
let conservation_arbitrary =
  let apps = [ "imatmult"; "primes3"; "gfetch"; "parmult"; "plytrace"; "syscall-mix" ] in
  let policies =
    [
      ("move-limit:0", System.Move_limit { threshold = 0 });
      ("move-limit:4", System.Move_limit { threshold = 4 });
      ("never-pin", System.Never_pin);
      ("all-global", System.All_global);
    ]
  in
  let topologies = Numa_machine.Config.builtin_topologies in
  let gen =
    QCheck.Gen.(
      triple (oneofl apps) (oneofl policies) (oneofl topologies))
  in
  QCheck.make
    ~print:(fun (a, (p, _), t) -> Printf.sprintf "%s / %s / %s" a p t)
    gen

let prop_conservation =
  QCheck.Test.make ~name:"profile conservation (app x policy x topology)" ~count:12
    conservation_arbitrary (fun (app, (_, policy), topology) ->
      let config =
        Option.get (Numa_machine.Config.of_topology_name ~n_cpus:4 topology)
      in
      let sys, report = run_app ~policy ~config ~scale:0.02 app in
      check_conserved ~label:(app ^ "/" ^ topology) sys;
      report.Report.profile <> None)

let fingerprint (r : Report.t) =
  ( r.Report.total_user_ns,
    r.Report.total_system_ns,
    Report.total_refs r.Report.refs_all,
    r.Report.numa_moves,
    r.Report.pins,
    r.Report.n_events )

(* Attaching the profiler must not perturb the simulation, and detaching
   it must remove every trace from the report (the golden tests pin the
   exact unprofiled bytes; this pins the profiled/unprofiled relation). *)
let test_profiling_off_identical () =
  let _, off = run_app ~profiling:false "imatmult" in
  let _, on_ = run_app ~profiling:true "imatmult" in
  Alcotest.(check bool) "same simulation" true (fingerprint off = fingerprint on_);
  Alcotest.(check bool) "no profile section when off" false
    (Numa_obs.Json.has_key (Numa_obs.Json.to_string (Report.to_json off)) ~key:"profile");
  Alcotest.(check bool) "profile section when on" true
    (Numa_obs.Json.has_key (Numa_obs.Json.to_string (Report.to_json on_)) ~key:"profile")

let test_snapshot_content () =
  let sys, report = run_app "primes3" in
  let p = Option.get (System.profile sys) in
  let s = Profile.snapshot ~top:5 p in
  let engine = System.engine sys in
  let elapsed = Engine.elapsed_ns engine in
  Alcotest.(check (float 1e-3)) "attributed = n_cpus x elapsed"
    (float_of_int s.Profile.n_cpus *. elapsed)
    s.Profile.attributed_ns_total;
  let labels = List.map (fun (n : Profile.tree_node) -> n.Profile.label) s.Profile.categories in
  List.iter
    (fun l ->
      Alcotest.(check bool) (l ^ " category present") true (List.mem l labels))
    [ "refs"; "kernel"; "compute" ];
  Alcotest.(check bool) "hot pages bounded" true (List.length s.Profile.hot_pages <= 5);
  Alcotest.(check bool) "hot pages found" true (s.Profile.hot_pages <> []);
  Alcotest.(check bool) "hot threads found" true (s.Profile.hot_threads <> []);
  (* primes3 serialises on a work-queue lock; the profiler must see it. *)
  Alcotest.(check bool) "hot locks found" true (s.Profile.hot_locks <> []);
  (match report.Report.profile with
  | None -> Alcotest.fail "report lost the profile section"
  | Some rs ->
      Alcotest.(check (float 1e-3)) "report snapshot agrees"
        s.Profile.attributed_ns_total rs.Profile.attributed_ns_total);
  let rendered = Profile.render s in
  Alcotest.(check bool) "render has header" true
    (String.length rendered > 0 && String.sub rendered 0 9 = "# profile");
  (* Every folded line is "path space number". *)
  String.split_on_char '\n' (Profile.folded s)
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         match String.rindex_opt line ' ' with
         | None -> Alcotest.failf "folded line without value: %s" line
         | Some i -> (
             let v = String.sub line (i + 1) (String.length line - i - 1) in
             match float_of_string_opt v with
             | Some f when f > 0. -> ()
             | _ -> Alcotest.failf "folded line with bad value: %s" line));
  (* The JSON export parses back. *)
  match Numa_obs.Json.parse (Numa_obs.Json.to_string (Profile.snapshot_to_json s)) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "snapshot JSON does not parse: %s" msg

let test_profile_deterministic () =
  let snap () =
    let sys, _ = run_app "gfetch" in
    Profile.snapshot (Option.get (System.profile sys))
  in
  let a = snap () and b = snap () in
  Alcotest.(check string) "profile JSON is bit-identical across reruns"
    (Numa_obs.Json.to_string (Profile.snapshot_to_json a))
    (Numa_obs.Json.to_string (Profile.snapshot_to_json b))

(* --- bench-compare ------------------------------------------------------ *)

let summary ?(events = Some 1000.) ?(gamma = 1.2) ?(t_numa = 10.) () =
  {
    BC.scale = 0.25;
    cpus = 4;
    events_per_sec = events;
    apps = [ { BC.app = "imatmult"; gamma; t_numa_s = t_numa } ];
  }

let lines_exn = function
  | Ok lines -> lines
  | Error msg -> Alcotest.failf "diff unexpectedly not comparable: %s" msg

let test_bench_compare_directions () =
  let baseline = summary () in
  (* Throughput DROP regresses; gamma/time RISE regresses. *)
  let slower = summary ~events:(Some 400.) () in
  let d = lines_exn (BC.diff ~baseline ~current:slower ~max_regress:25.) in
  Alcotest.(check bool) "throughput drop flagged" true (BC.regressed d);
  let faster = summary ~events:(Some 2000.) () in
  Alcotest.(check bool) "throughput rise fine" false
    (BC.regressed (lines_exn (BC.diff ~baseline ~current:faster ~max_regress:25.)));
  let worse_gamma = summary ~gamma:2.0 () in
  Alcotest.(check bool) "gamma rise flagged" true
    (BC.regressed (lines_exn (BC.diff ~baseline ~current:worse_gamma ~max_regress:25.)));
  let better = summary ~gamma:1.0 ~t_numa:8. () in
  Alcotest.(check bool) "improvement fine" false
    (BC.regressed (lines_exn (BC.diff ~baseline ~current:better ~max_regress:25.)));
  let slow_app = summary ~t_numa:20. () in
  let d = lines_exn (BC.diff ~baseline ~current:slow_app ~max_regress:25.) in
  Alcotest.(check bool) "t_numa rise flagged" true (BC.regressed d);
  Alcotest.(check bool) "render marks the row" true
    (contains ~sub:"REGRESSED" (BC.render d))

let test_bench_compare_tolerance_and_missing () =
  let baseline = summary () in
  (* Within the threshold: a 20% drop at max-regress 25 passes. *)
  let close = summary ~events:(Some 800.) () in
  Alcotest.(check bool) "within tolerance" false
    (BC.regressed (lines_exn (BC.diff ~baseline ~current:close ~max_regress:25.)));
  (* Old records without events/sec: the metric is skipped, apps still gate. *)
  let old = summary ~events:None () in
  let d = lines_exn (BC.diff ~baseline:old ~current:(summary ()) ~max_regress:25.) in
  Alcotest.(check int) "throughput skipped" 2 (List.length d);
  (* Different configurations refuse to compare. *)
  (match BC.diff ~baseline ~current:{ baseline with BC.cpus = 8 } ~max_regress:25. with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cpu mismatch accepted");
  match BC.diff ~baseline ~current:{ baseline with BC.scale = 1.0 } ~max_regress:25. with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "scale mismatch accepted"

let test_bench_compare_roundtrip () =
  let s = summary () in
  match BC.summary_of_json (BC.to_json s) with
  | Error msg -> Alcotest.failf "compact baseline does not parse back: %s" msg
  | Ok s' ->
      Alcotest.(check bool) "round trip" true (s = s');
      (* And the full bench-record spelling (times nested) parses too. *)
      let full =
        Numa_obs.Json.Obj
          [
            ("scale", Numa_obs.Json.Float 0.25);
            ("cpus", Numa_obs.Json.Int 4);
            ("events_per_sec", Numa_obs.Json.Float 1000.);
            ( "measurements",
              Numa_obs.Json.List
                [
                  Numa_obs.Json.Obj
                    [
                      ("app", Numa_obs.Json.String "imatmult");
                      ("gamma", Numa_obs.Json.Float 1.2);
                      ( "times",
                        Numa_obs.Json.Obj
                          [ ("t_numa_s", Numa_obs.Json.Float 10.) ] );
                    ];
                ] );
          ]
      in
      (match BC.summary_of_json full with
      | Error msg -> Alcotest.failf "full record does not parse: %s" msg
      | Ok s'' -> Alcotest.(check bool) "full record agrees" true (s = s''))

let suite =
  [
    Alcotest.test_case "conservation on every Table 4 app" `Quick
      test_conservation_table4;
    qcheck prop_conservation;
    Alcotest.test_case "profiling off leaves reports untouched" `Quick
      test_profiling_off_identical;
    Alcotest.test_case "snapshot content and exports" `Quick test_snapshot_content;
    Alcotest.test_case "profile is deterministic" `Quick test_profile_deterministic;
    Alcotest.test_case "bench-compare regression directions" `Quick
      test_bench_compare_directions;
    Alcotest.test_case "bench-compare tolerance and skips" `Quick
      test_bench_compare_tolerance_and_missing;
    Alcotest.test_case "bench-compare JSON round trip" `Quick
      test_bench_compare_roundtrip;
  ]
