let () =
  Alcotest.run "numa_mem"
    [
      ("util", Test_util.suite);
      ("machine", Test_machine.suite);
      ("topo", Test_topo.suite);
      ("vm", Test_vm.suite);
      ("core", Test_core.suite);
      ("engine", Test_engine.suite);
      ("protocol", Test_protocol.suite);
      ("system", Test_system.suite);
      ("workload", Test_workload.suite);
      ("apps", Test_apps.suite);
      ("pageout", Test_pageout.suite);
      ("determinism", Test_determinism.suite);
      ("coverage", Test_coverage.suite);
      ("edge", Test_edge.suite);
      ("multitask", Test_multitask.suite);
      ("metrics", Test_metrics.suite);
      ("trace", Test_trace.suite);
      ("obs", Test_obs.suite);
      ("lang", Test_lang.suite);
      ("properties", Test_properties.suite);
      ("faults", Test_faults.suite);
      ("profile", Test_profile.suite);
      ("pt", Test_pt.suite);
      ("serve", Test_serve.suite);
      ("resilience", Test_resilience.suite);
    ]
